"""Message-loss adversaries (Definition 11, constraint 4 / Property 1).

The model allows any process to lose any subset of the messages broadcast
by *other* processes in any round (broadcasters always receive their own
message — constraint 5, which the engine enforces regardless of what an
adversary says).  A loss adversary answers one question per (round,
receiver): *which senders' messages are dropped here?*

The per-receiver :meth:`LossAdversary.losses` interface is deliberately
fine-grained so adversaries can create the non-uniform receive sets the
paper motivates with the capture effect (Section 1.1): two listeners
within range of the same two broadcasters may receive different messages.

The batched contract
--------------------

The engine's hot path asks one question per *round*, not per receiver:
:meth:`LossAdversary.losses_for_round` returns a mapping from every
receiver to its drop set.  The base class provides a fallback that loops
over :meth:`losses`, so third-party adversaries keep working unchanged;
every built-in overrides it with a genuinely batched resolution.  Two
conventions let the engine amortise work across receivers:

* **Shared-set aliasing** — a batched adversary may map *several*
  receivers to the *same* set object (e.g. :class:`SilenceLoss` returns
  one interned frozenset for everyone).  The engine detects aliasing by
  object identity and computes the surviving multiset once per distinct
  set.  A shared set may contain a receiver that is itself a sender; the
  engine restores self-delivery per receiver (constraint 5), so sharing
  never changes semantics.  Corollary for implementers: never mutate a
  drop set after returning it, and only alias sets whose *pre-exemption*
  content is identical for all aliased receivers.
* **Normalized mappings** — an adversary that guarantees every drop set
  is already a subset of ``senders`` *excluding the receiver itself*
  returns a :class:`ResolvedRoundLosses` mapping.  The engine then skips
  the per-element sender/self filtering and treats a receiver appearing
  in its own drop set as a model violation (a self-delivery breach,
  surfaced as :class:`~repro.core.errors.ModelViolation`).
* **Array-backed mappings** — the numpy legs of the randomised built-ins
  (and both substrate layers) return an :class:`ArrayRoundLosses`:
  normalized like above, but with the per-receiver *drop counts*
  precomputed as an int array and the drop sets materialised lazily on
  first mapping access.  The engine's array round kernel consumes the
  counts directly and, in single-message rounds, never touches the sets
  at all.  Adversaries that can cheaply name the dropped *(receiver,
  sender)* pairs as position arrays additionally provide
  :meth:`ArrayRoundLosses.drop_pairs`; with interned message codes the
  kernel then resolves multi-message rounds as one (receivers x codes)
  count matrix instead of per-receiver decrement loops, again without
  ever materialising a python set.

Determinism guarantees: the same seed and the same call sequence replay
the same execution (the engine always enumerates receivers in index
order, so engine-driven runs are reproducible end to end).  For the
RNG-free adversaries the batched and per-receiver paths produce
*identical* executions.  :class:`CaptureEffectLoss`'s per-receiver draws
are a pure function of ``(seed, round, receiver)``, so its per-receiver
pattern is independent of how callers enumerate receivers; its batched
numpy path draws one vectorised substream block per ``(seed, round)``
instead — same capture law, different (still fully deterministic)
pattern.  :class:`IIDLoss`'s batched path consumes its stream in
receiver-enumeration order: it draws a different (but equally seeded)
stream than the per-receiver path, with the exact same Bernoulli(p)
per-pair law, spending O(#losses) draws per round instead of O(n^2)
(vectorised when numpy is available, geometric gap-skipping otherwise).

:class:`EventualCollisionFreedom` is the Property 1 wrapper: it delegates
to an inner adversary until ``r_cf`` and thereafter forces delivery in
single-broadcaster rounds (multi-broadcaster rounds stay at the inner
adversary's mercy — ECF promises nothing about them).
"""

from __future__ import annotations

import abc
import hashlib
import math
import random
from collections.abc import Mapping as _MappingABC
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.arrays import numpy_or_none
from ..core.errors import ConfigurationError
from ..core.types import ProcessId

#: Optional acceleration for whole-round loss resolution.  Shared gating
#: via :func:`repro.core.arrays.numpy_or_none` (numpy importable and
#: ``REPRO_PURE_PYTHON`` unset); tests monkeypatch this binding to pin
#: one backend.
_np = numpy_or_none()

#: The empty drop set, shared to avoid churn in the hot path.
_NO_LOSS: FrozenSet[ProcessId] = frozenset()

#: One-slot pid -> row cache: ``(receivers tuple, positions dict)``.
_RposCache = Optional[Tuple[tuple, Dict[ProcessId, int]]]


def _cached_receiver_positions(
    receivers: Tuple[ProcessId, ...], cache: _RposCache
) -> Tuple[Dict[ProcessId, int], _RposCache]:
    """``(positions, new cache)`` keyed by receiver-tuple *identity*.

    The engine passes the same indices tuple every round, so the pid ->
    row map is built once per execution, not once per round; holding the
    tuple inside the cache keeps the identity stable.  Shared by every
    array-backed adversary.
    """
    if cache is not None and cache[0] is receivers:
        return cache[1], cache
    rpos = {pid: k for k, pid in enumerate(receivers)}
    return rpos, (receivers, rpos)


class ResolvedRoundLosses(Dict[ProcessId, AbstractSet[ProcessId]]):
    """A *normalized* whole-round loss mapping.

    Returning this type from :meth:`LossAdversary.losses_for_round` is a
    promise that every drop set is a subset of this round's senders and
    never contains the receiver it is keyed under.  The engine exploits
    the promise (``|lost|`` *is* the number of dropped messages) and
    enforces it: a receiver found in its own drop set, or a non-sender in
    any drop set, raises :class:`~repro.core.errors.ModelViolation`
    instead of silently corrupting receive counts.
    """


class ArrayRoundLosses(_MappingABC):
    """A normalized whole-round loss resolution backed by arrays.

    The counts-first sibling of :class:`ResolvedRoundLosses`, returned by
    the numpy legs of the built-in randomised adversaries.  It makes the
    same normalization promise — every drop set is a subset of this
    round's senders, excluding its receiver — but carries the
    *per-receiver drop counts* as a ready-made int array
    (:attr:`drop_counts`, aligned with :attr:`receivers`), which is all
    the engine's array round kernel needs to derive receive counts and
    feed array detector advice; single-message rounds resolve from the
    counts alone, multi-message rounds additionally read
    :meth:`drop_pairs` when the adversary provides ``pairs``.

    The mapping interface is intact for every other consumer
    (:class:`ComposedLoss`, the engine's pure-python path, tests): the
    actual drop *sets* are materialised lazily, all at once, on first
    mapping access, from the same arrays the counts came from — so the
    sets and the counts can never disagree, and a kernel round that only
    reads counts skips the per-receiver set construction entirely.
    Construction-side contract: ``drop_counts[i]`` **must** equal the
    size of receiver ``i``'s materialised drop set, and materialisation
    must not consume randomness any later draw depends on (the built-ins
    use one per-round substream whose tail is reserved for the sets).

    ``pairs``, when given, is the multi-message acceleration hook: a
    lazy producer of the dropped *(receiver, sender)* position pairs
    (see :meth:`drop_pairs`).  It must describe exactly the same drops
    as the sets and the counts — same per-round substream rules as
    ``materialise`` — and self pairs (a sender appearing in its own
    row) must already be excluded.
    """

    __slots__ = (
        "receivers", "drop_counts", "_sets", "_materialise",
        "_pairs", "_pairs_fn",
    )

    def __init__(
        self,
        receivers: Tuple[ProcessId, ...],
        drop_counts,
        materialise: Callable[[], Dict[ProcessId, AbstractSet[ProcessId]]],
        pairs: Optional[Callable[[], Tuple]] = None,
    ) -> None:
        self.receivers = receivers
        self.drop_counts = drop_counts
        self._sets: Optional[Dict[ProcessId, AbstractSet[ProcessId]]] = None
        self._materialise = materialise
        self._pairs: Optional[Tuple] = None
        self._pairs_fn = pairs

    def drop_pairs(self) -> Optional[Tuple]:
        """``(rows, cols)`` position arrays of every dropped pair, or ``None``.

        ``rows[k]`` is the *receiver's* position in :attr:`receivers` and
        ``cols[k]`` the dropped *sender's* position in this round's
        sender sequence, one entry per dropped (receiver, sender) pair in
        any order; self pairs are excluded.  ``None`` means the producer
        did not provide a pairs representation and the consumer must fall
        back to the materialised drop sets.  Lazy and memoised, like the
        sets — the engine only asks in multi-message kernel rounds.
        """
        if self._pairs_fn is not None:
            self._pairs = self._pairs_fn()
            self._pairs_fn = None
        return self._pairs

    def _ensure(self) -> Dict[ProcessId, AbstractSet[ProcessId]]:
        sets = self._sets
        if sets is None:
            sets = self._sets = self._materialise()
            self._materialise = None  # type: ignore[assignment]
        return sets

    def __getitem__(self, pid: ProcessId) -> AbstractSet[ProcessId]:
        return self._ensure()[pid]

    def __iter__(self):
        return iter(self.receivers)

    def __len__(self) -> int:
        return len(self.receivers)

    def __contains__(self, pid: object) -> bool:
        return pid in self._ensure()

    def get(self, pid: ProcessId, default=None):
        return self._ensure().get(pid, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialised" if self._sets is not None else "lazy"
        return (
            f"ArrayRoundLosses({len(self.receivers)} receivers, {state})"
        )


class LossAdversary(abc.ABC):
    """Chooses, per round and receiver, which senders' messages are lost."""

    @abc.abstractmethod
    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        """Senders whose message ``receiver`` loses in ``round_index``.

        ``senders`` lists every process that broadcast this round.  The
        returned set may include ``receiver`` itself but the engine ignores
        that entry: self-delivery is unconditional in the model.
        """

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        """Resolve the whole round at once: receiver -> dropped senders.

        The default falls back to one :meth:`losses` call per receiver,
        so adversaries written against the per-receiver interface keep
        working.  Built-ins override this with batched implementations
        (see the module docstring for the aliasing and normalization
        conventions batched mappings may use).
        """
        losses = self.losses
        out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
        for receiver in receivers:
            lost = losses(round_index, senders, receiver)
            if type(lost) is not set and not isinstance(lost, frozenset):
                # Coerce annotation-violating adversaries (e.g. a
                # ScriptedLoss callback returning a list) so downstream
                # decrement loops never double-count duplicates.
                lost = set(lost)
            out[receiver] = lost
        return out

    def reset(self) -> None:
        """Forget internal state before a fresh execution (default: none)."""

    @property
    def r_cf(self) -> Optional[int]:
        """The round from which Property 1 (ECF) holds, if promised."""
        return None


class ReliableDelivery(LossAdversary):
    """No loss at all: every receiver gets every message.

    Trivially satisfies ECF with ``r_cf = 1``.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        return _NO_LOSS

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        return dict.fromkeys(receivers, _NO_LOSS)

    @property
    def r_cf(self) -> int:
        return 1


class SilenceLoss(LossAdversary):
    """Total loss: every receiver loses every other process's message.

    This is the harshest legal behaviour (only self-delivery survives) and
    the backdrop of Theorem 9's ``NOCF`` setting.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        return frozenset(s for s in senders if s != receiver)

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        # One interned drop set for everyone; the engine exempts each
        # receiver's own message (constraint 5), so sharing the full
        # sender set is exact.
        if not senders:
            return dict.fromkeys(receivers, _NO_LOSS)
        return dict.fromkeys(receivers, frozenset(senders))


class IIDLoss(LossAdversary):
    """Independent per-(receiver, sender) loss with probability ``p``.

    Models the 20-50% loss regime the empirical studies in Section 1.1
    report.  Fully seeded: the same seed replays the same loss pattern.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"loss probability must be in [0,1]: {p}")
        self.p = p
        self.seed = seed
        self._rng = random.Random(seed)
        # Lazily created streams for the batched paths (PCG64 when numpy
        # is available, a dedicated stdlib stream otherwise); kept
        # separate from the legacy stream so per-receiver callers are
        # unaffected by whether batched rounds ran in between.
        self._np_gen = None
        self._batch_rng: Optional[random.Random] = None
        self._rpos_cache: Optional[Tuple[tuple, Dict[ProcessId, int]]] = None
        # (receivers tuple, senders list, self-row idx, self-cell idx):
        # revalidated per round by identity + list equality.
        self._self_cache: Optional[tuple] = None

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        # Legacy per-receiver path: one RNG draw per (sender, receiver)
        # pair.  Locals avoid re-resolving attributes per iteration.
        rand = self._rng.random
        p = self.p
        return {s for s in senders if s != receiver and rand() < p}

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        # Geometric gap-skipping over the (receiver x sender) grid: the
        # flat grid is an iid Bernoulli(p) stream, so the gap to the next
        # loss is geometric and one RNG draw per *loss* replaces one draw
        # per *pair* — O(p·n²) instead of O(n²), the exact same law.
        # Self pairs are part of the grid and simply discarded, keeping
        # index arithmetic trivial without changing any other pair's law.
        p = self.p
        n_senders = len(senders)
        if p <= 0.0 or n_senders == 0:
            return ResolvedRoundLosses(
                (pid, _NO_LOSS) for pid in receivers
            )
        if p >= 1.0:
            # Everyone loses everything (self-delivery restored by the
            # engine): one shared interned set.
            return dict.fromkeys(receivers, frozenset(senders))
        if _np is not None:
            return self._losses_for_round_np(senders, receivers)
        log_q = math.log1p(-p)
        if log_q == 0.0:
            # log1p underflows to -0.0 only for p below ~1e-16, where the
            # chance of even one loss in a round is < n^2 * 1e-16 —
            # indistinguishable from lossless at any statistical
            # tolerance.
            return ResolvedRoundLosses(
                (pid, _NO_LOSS) for pid in receivers
            )
        receiver_list = list(receivers)
        senders_t = tuple(senders)
        total = n_senders * len(receiver_list)
        out = ResolvedRoundLosses()
        if not receiver_list:
            return out
        if self._batch_rng is None:
            # A dedicated stream (seeded from the adversary's seed) so
            # interleaving batched and per-receiver calls never shifts
            # either stream.
            self._batch_rng = random.Random(f"{self.seed}|batched")
        rand = self._batch_rng.random
        log1p = math.log1p
        inv_log_q = 1.0 / log_q
        # Losses arrive in flat-index order, i.e. receiver-major: walk the
        # current row alongside the skip sequence so each loss costs one
        # subtraction instead of a divmod, and each row's drop set is
        # created exactly once, when its first loss appears.
        row = 0
        row_start = 0
        row_end = n_senders
        pid = receiver_list[0]
        lost: Optional[Set[ProcessId]] = None
        idx = -1
        while True:
            # Failures before the next success: floor(log(1-U)/log(1-p)).
            # The float comparison runs before int() so a huge gap (tiny
            # p can push it past float range) ends the round instead of
            # overflowing.
            gap = log1p(-rand()) * inv_log_q
            if gap >= total:
                break
            idx += 1 + int(gap)
            if idx >= total:
                break
            if idx >= row_end:
                row = idx // n_senders
                pid = receiver_list[row]
                row_start = row * n_senders
                row_end = row_start + n_senders
                lost = None
            s = senders_t[idx - row_start]
            if s == pid:
                continue
            if lost is None:
                out[pid] = lost = {s}
            else:
                lost.add(s)
        for pid in receiver_list:
            if pid not in out:
                out[pid] = _NO_LOSS
        return out

    def _losses_for_round_np(
        self,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> "ArrayRoundLosses":
        """Vectorised whole-round resolution (numpy available).

        Draws the full (receiver x sender) Bernoulli grid in one C call
        from a dedicated PCG64 stream — the exact stream the pre-array
        implementation consumed, so executions replay across versions —
        and reduces it to per-receiver drop *counts* in one vectorised
        pass (row sums minus the self pairs, which the model exempts).
        The result is an :class:`ArrayRoundLosses`: the engine's array
        kernel reads only the counts, while any consumer that needs the
        actual drop sets materialises all of them lazily from the same
        grid positions.  Same iid Bernoulli(p) law as the scalar paths,
        deterministic per seed.
        """
        gen = self._np_gen
        if gen is None:
            self._np_gen = gen = _np.random.Generator(
                _np.random.PCG64(self.seed)
            )
        receivers_t = (
            receivers if type(receivers) is tuple else tuple(receivers)
        )
        n_senders = len(senders)
        n_receivers = len(receivers_t)
        hits = gen.random(n_senders * n_receivers) < self.p
        # Drop counts: row sums over the receiver-major grid, minus each
        # receiver-sender's own hit (self-delivery is unconditional).
        drop_counts = hits.reshape(n_receivers, n_senders).sum(
            axis=1, dtype=_np.int64
        )
        # The self-pair positions depend only on the (senders, receivers)
        # pair, which is stable round over round in steady executions —
        # cache the index arrays and revalidate by cheap list equality.
        cached = self._self_cache
        if (cached is not None and cached[0] is receivers_t
                and cached[1] == senders):
            self_rows, self_cells = cached[2], cached[3]
        else:
            rpos, self._rpos_cache = _cached_receiver_positions(
                receivers_t, self._rpos_cache
            )
            rows_l: List[int] = []
            cells_l: List[int] = []
            for j, s in enumerate(senders):
                k = rpos.get(s)
                if k is not None:
                    rows_l.append(k)
                    cells_l.append(k * n_senders + j)
            if rows_l:
                self_rows = _np.asarray(rows_l, dtype=_np.intp)
                self_cells = _np.asarray(cells_l, dtype=_np.intp)
            else:
                self_rows = self_cells = None
            self._self_cache = (
                receivers_t, list(senders), self_rows, self_cells
            )
        if self_cells is not None:
            drop_counts[self_rows] -= hits[self_cells]

        def pairs() -> Tuple:
            # The eager Bernoulli grid already holds every dropped pair;
            # clearing the self cells (exempt, never drops) on a copy
            # keeps ``hits`` intact for ``materialise`` and consumes no
            # randomness.
            if self_cells is not None:
                grid = hits.copy()
                grid[self_cells] = False
                flat = _np.flatnonzero(grid)
            else:
                flat = _np.flatnonzero(hits)
            rows = flat // n_senders
            return rows, flat - rows * n_senders

        def materialise() -> Dict[ProcessId, AbstractSet[ProcessId]]:
            flat = _np.flatnonzero(hits)
            out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
            if not flat.size:
                for pid in receivers_t:
                    out[pid] = _NO_LOSS
                return out
            rows = flat // n_senders
            # Fancy-indexing the sender sequence keeps arbitrary hashable
            # ProcessIds intact (object dtype round-trips through tolist).
            lost_senders = _np.asarray(senders)[flat - rows * n_senders]
            bounds = _np.searchsorted(
                rows, _np.arange(n_receivers + 1)
            ).tolist()
            lost_list = lost_senders.tolist()
            for i, pid in enumerate(receivers_t):
                a = bounds[i]
                b = bounds[i + 1]
                if a == b:
                    out[pid] = _NO_LOSS
                    continue
                lost = set(lost_list[a:b])
                # Self pairs are part of the grid; discard keeps the
                # normalized promise (drop sets never name their
                # receiver).
                lost.discard(pid)
                out[pid] = lost if lost else _NO_LOSS
            return out

        return ArrayRoundLosses(
            receivers_t, drop_counts, materialise, pairs=pairs
        )

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._np_gen = None
        self._batch_rng = None
        self._self_cache = None


class CaptureEffectLoss(LossAdversary):
    """Capture-effect loss: under contention, each receiver decodes at most
    ``capture_limit`` of the competing messages, chosen per receiver.

    With a single broadcaster the message is delivered (subject to
    ``p_single_loss`` ambient loss, default 0).  With several broadcasters
    each receiver independently "captures" a random subset of size at most
    ``capture_limit`` — reproducing the A/B/C/D example of Section 1.1
    where listeners within range of the same two senders end up with
    different receive sets.

    Determinism contract
    --------------------

    All randomness is a pure function of ``(seed, round_index)`` plus the
    receiver — never of hidden stream state — so the same seed always
    replays the same execution and ``reset()`` has nothing to forget.
    Concretely there are two equal-law draw schemes, chosen by backend:

    * **Per-receiver substreams** (the reference; also the per-receiver
      :meth:`losses` interface on every backend): a fresh stdlib stream
      seeded from ``(seed, round_index, receiver)`` per pair, so the
      pattern is independent of the order in which callers enumerate
      receivers.
    * **One vectorised substream block per round** (the batched path
      when numpy is available): a fresh PCG64 substream seeded from
      ``(seed, round_index, senders, receivers)`` serves the whole
      call — first the per-receiver capture-count draws (one vectorised
      call), then, lazily, the capture-subset permutations.  The block
      is a pure function of those four inputs, so engine executions
      (which always enumerate receivers in index order) are
      deterministic end to end, and distinct delegated calls within one
      round — partition groups, multihop neighbourhoods — draw
      *independent* blocks rather than replaying a shared one.

    Both schemes sample the same law — capture counts uniform on
    ``{0..min(capture_limit, |others|)}`` and capture subsets uniform
    without replacement — but their concrete patterns differ, exactly as
    :class:`IIDLoss`'s batched stream differs from its per-receiver
    stream.  Within one backend, batched executions replay bit-for-bit;
    the equivalence suite asserts the engine's array kernel and its
    pure-python fallback see identical patterns because both consume
    this same batched resolution.
    """

    def __init__(
        self,
        capture_limit: int = 1,
        p_single_loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        if capture_limit < 0:
            raise ConfigurationError("capture_limit must be >= 0")
        if not 0.0 <= p_single_loss <= 1.0:
            raise ConfigurationError("p_single_loss must be in [0,1]")
        self.capture_limit = capture_limit
        self.p_single_loss = p_single_loss
        self.seed = seed
        self._rpos_cache: Optional[Tuple[tuple, Dict[ProcessId, int]]] = None

    def _pair_rng(self, round_index: int, receiver: ProcessId) -> random.Random:
        # String seeding hashes with SHA-512 internally: deterministic
        # across runs and platforms, independent of PYTHONHASHSEED.
        return random.Random(f"{self.seed}|{round_index}|{receiver!r}")

    def _round_gen(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ):
        """One PCG64 substream per (round, call context), platform-independent.

        Seeded through SHA-512 of the seed, the round, *and* the sender/
        receiver lists (the same string-hash idiom as :meth:`_pair_rng`),
        so the substream is independent of ``PYTHONHASHSEED``, identical
        across platforms, and — crucially — *distinct for distinct
        delegated calls within one round*: a group-delegating wrapper
        (``PartitionLoss`` intra resolution, ``MultihopLayer``
        neighbourhoods) resolves each group against its own block
        instead of replaying one shared block into correlated losses.
        """
        # C-level container reprs: one pass each, no per-element Python.
        # The engine always hands the same container shapes per call
        # site (senders list, receivers tuple), so the context string is
        # stable wherever determinism is observable.
        context = (
            f"{self.seed}|{round_index}|{senders!r}|{receivers!r}|block"
        )
        digest = hashlib.sha512(context.encode()).digest()
        entropy = int.from_bytes(digest[:32], "little")
        return _np.random.Generator(
            _np.random.PCG64(_np.random.SeedSequence(entropy))
        )

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        others = [s for s in senders if s != receiver]
        if not others:
            return _NO_LOSS
        rng = self._pair_rng(round_index, receiver)
        if len(senders) == 1:
            if rng.random() < self.p_single_loss:
                return frozenset(others)
            return _NO_LOSS
        captured_count = rng.randint(0, min(self.capture_limit, len(others)))
        captured = set(rng.sample(others, captured_count))
        return {s for s in others if s not in captured}

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        if _np is not None and senders:
            return self._losses_for_round_np(round_index, senders, receivers)
        # Reference path: each receiver's substream is independent, so
        # the batched resolution is just the per-receiver one — already
        # normalized (drop sets are subsets of senders minus the
        # receiver by construction).
        losses = self.losses
        return ResolvedRoundLosses(
            (pid, losses(round_index, senders, pid)) for pid in receivers
        )

    def _losses_for_round_np(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> "ArrayRoundLosses":
        """Whole-round resolution from one vectorised substream block.

        The round's substream (:meth:`_round_gen`) is consumed in a
        fixed order: the per-receiver capture counts first — which is
        all the drop-count array needs — then, only if some consumer
        materialises the drop sets, one uniform matrix whose per-row
        argsort yields each receiver's random capture permutation
        (receiving ``k`` of ``m`` competitors = keeping a uniform
        ``k``-subset, so taking the first ``k`` of a uniform permutation
        reproduces ``rng.sample``'s law exactly).  Laziness is safe
        because nothing else ever draws from the round's substream.
        """
        receivers_t = (
            receivers if type(receivers) is tuple else tuple(receivers)
        )
        n_receivers = len(receivers_t)
        n_senders = len(senders)
        rpos, self._rpos_cache = _cached_receiver_positions(
            receivers_t, self._rpos_cache
        )
        gen = self._round_gen(round_index, senders, receivers_t)
        if n_senders == 1:
            (sole,) = tuple(senders)
            lose = gen.random(n_receivers) < self.p_single_loss
            k = rpos.get(sole)
            if k is not None:
                lose[k] = False  # self-delivery: the sender keeps its own
            drop_counts = lose.astype(_np.int64)

            def materialise_single() -> Dict[ProcessId, AbstractSet[ProcessId]]:
                only = frozenset((sole,))
                return {
                    pid: (only if flag else _NO_LOSS)
                    for pid, flag in zip(receivers_t, lose.tolist())
                }

            return ArrayRoundLosses(
                receivers_t, drop_counts, materialise_single
            )
        own = _np.zeros(n_receivers, dtype=bool)
        self_rows: List[int] = []
        self_cols: List[int] = []
        for j, s in enumerate(senders):
            k = rpos.get(s)
            if k is not None:
                own[k] = True
                self_rows.append(k)
                self_cols.append(j)
        # m = |others| per receiver; capture counts uniform on
        # {0..min(capture_limit, m)}; everything not captured is lost.
        m = n_senders - own.astype(_np.int64)
        capped = _np.minimum(self.capture_limit, m)
        captured_counts = gen.integers(capped + 1)
        drop_counts = m - captured_counts

        # The capture permutations are one lazy draw from the round's
        # substream, memoised so the drop sets and the drop pairs (either
        # may be asked first, or both) derive from the *same* keys — the
        # substream is consumed at most once however many views resolve.
        order_cell: List = []

        def capture_order():
            if not order_cell:
                # Uniform keys per (receiver, sender); each receiver's
                # own column is pushed past every finite key so the
                # first m entries of the row's argsort are a uniform
                # permutation of its m competitors.
                keys = gen.random((n_receivers, n_senders))
                if self_rows:
                    keys[self_rows, self_cols] = _np.inf
                order_cell.append(_np.argsort(keys, axis=1))
            return order_cell[0]

        def pairs_multi() -> Tuple:
            # Row i keeps its permutation's first k_i competitors and
            # drops positions k_i..m_i-1; the mask picks exactly those
            # cells, so the pair count per row equals drop_counts[i].
            order = capture_order()
            col = _np.arange(n_senders)
            mask = (
                (col >= captured_counts[:, None]) & (col < m[:, None])
            )
            rows, pos = _np.nonzero(mask)
            return rows, order[rows, pos]

        def materialise_multi() -> Dict[ProcessId, AbstractSet[ProcessId]]:
            order = capture_order()
            sender_arr = _np.asarray(senders)
            out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
            m_list = m.tolist()
            k_list = captured_counts.tolist()
            for i, pid in enumerate(receivers_t):
                mi = m_list[i]
                ki = k_list[i]
                if ki >= mi:
                    out[pid] = _NO_LOSS
                    continue
                out[pid] = set(sender_arr[order[i, ki:mi]].tolist())
            return out

        return ArrayRoundLosses(
            receivers_t, drop_counts, materialise_multi, pairs=pairs_multi
        )


class PartitionLoss(LossAdversary):
    """Split the index set into groups; messages never cross groups.

    Within a group, delivery follows ``intra`` (default: reliable).  This is
    the workhorse of the impossibility constructions (Theorems 4, 8 and the
    Lemma 23 compositions): two groups evolve side by side without ever
    hearing each other.

    ``until_round`` bounds the partition: from the next round on, no loss
    (used by Theorem 4's γ execution, which must satisfy ECF).
    """

    def __init__(
        self,
        groups: Sequence[Iterable[ProcessId]],
        intra: Optional[LossAdversary] = None,
        until_round: Optional[int] = None,
    ) -> None:
        self._group_of: Dict[ProcessId, int] = {}
        for g, members in enumerate(groups):
            for pid in members:
                if pid in self._group_of:
                    raise ConfigurationError(
                        f"process {pid} appears in two partition groups"
                    )
                self._group_of[pid] = g
        self.intra = intra or ReliableDelivery()
        self.until_round = until_round

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if self.until_round is not None and round_index > self.until_round:
            return _NO_LOSS
        my_group = self._group_of.get(receiver)
        cross = {
            s
            for s in senders
            if s != receiver and self._group_of.get(s) != my_group
        }
        same_group = [
            s for s in senders if self._group_of.get(s) == my_group
        ]
        intra_lost = self.intra.losses(round_index, same_group, receiver)
        return cross | set(intra_lost)

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        if self.until_round is not None and round_index > self.until_round:
            return dict.fromkeys(receivers, _NO_LOSS)
        group_of = self._group_of
        by_group: Dict[Optional[int], List[ProcessId]] = {}
        for pid in receivers:
            by_group.setdefault(group_of.get(pid), []).append(pid)
        out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
        for group, members in by_group.items():
            # One cross-group drop set per group, shared by all its
            # members (a receiver's own group is its own, so the shared
            # set never needs a self exemption), and one delegated intra
            # resolution per group instead of one per receiver.
            cross = frozenset(
                s for s in senders if group_of.get(s) != group
            )
            same_group = [
                s for s in senders if group_of.get(s) == group
            ]
            intra_map = self.intra.losses_for_round(
                round_index, same_group, members
            )
            for pid in members:
                intra_lost = intra_map[pid]
                if intra_lost:
                    combined = set(cross)
                    combined.update(
                        s for s in intra_lost if s != pid
                    )
                    out[pid] = combined
                else:
                    out[pid] = cross
        return out

    def reset(self) -> None:
        self.intra.reset()

    @property
    def r_cf(self) -> Optional[int]:
        if self.until_round is None:
            return None
        return self.until_round + 1


class AlphaLoss(LossAdversary):
    """The alpha-execution delivery rule (Definition 24, rule 3).

    * exactly one broadcaster  -> everyone receives the message;
    * two or more broadcasters -> every receiver keeps only its own
      message, all others are lost.

    Satisfies ECF from round 1 by construction.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if len(senders) <= 1:
            return _NO_LOSS
        return {s for s in senders if s != receiver}

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        if len(senders) <= 1:
            return dict.fromkeys(receivers, _NO_LOSS)
        # Contention: everyone keeps only its own message.  Share the full
        # sender set; the engine restores each sender's self-delivery.
        return dict.fromkeys(receivers, frozenset(senders))

    @property
    def r_cf(self) -> int:
        return 1


class ScriptedLoss(LossAdversary):
    """Loss driven by an explicit callable — the fully general adversary.

    ``fn(round_index, senders, receiver)`` returns the senders dropped at
    ``receiver``.  Lower-bound constructions use this to realise exactly
    the receive behaviour their proofs prescribe.

    ``round_fn(round_index, senders, receivers)``, if given instead, is
    the batched analogue: it returns the whole round's receiver -> drop
    set mapping in one call.  Exactly one of the two must be provided.
    """

    def __init__(
        self,
        fn: Optional[
            Callable[[int, Sequence[ProcessId], ProcessId], AbstractSet[ProcessId]]
        ] = None,
        r_cf: Optional[int] = None,
        round_fn: Optional[
            Callable[
                [int, Sequence[ProcessId], Sequence[ProcessId]],
                Mapping[ProcessId, AbstractSet[ProcessId]],
            ]
        ] = None,
    ) -> None:
        if (fn is None) == (round_fn is None):
            raise ConfigurationError(
                "ScriptedLoss needs exactly one of fn / round_fn"
            )
        self._fn = fn
        self._round_fn = round_fn
        self._r_cf = r_cf

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if self._fn is not None:
            return self._fn(round_index, senders, receiver)
        return self._round_fn(round_index, senders, [receiver])[receiver]

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        if self._round_fn is not None:
            return dict(self._round_fn(round_index, senders, receivers))
        # Per-receiver script, batched by interning: scripts typically
        # prescribe group-structured drop sets (the gamma compositions),
        # so value-identical sets collapse to one shared object and the
        # engine computes each group's surviving multiset once.
        fn = self._fn
        interned: Dict[FrozenSet[ProcessId], FrozenSet[ProcessId]] = {}
        out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
        for pid in receivers:
            lost = frozenset(fn(round_index, senders, pid))
            if not lost:
                out[pid] = _NO_LOSS
                continue
            out[pid] = interned.setdefault(lost, lost)
        return out

    @property
    def r_cf(self) -> Optional[int]:
        return self._r_cf


class ComposedLoss(LossAdversary):
    """Union of several adversaries' drop sets: a message survives only if
    *every* component delivers it.  Useful to stack ambient IID loss on top
    of a structural pattern."""

    def __init__(self, components: Sequence[LossAdversary]) -> None:
        if not components:
            raise ConfigurationError("ComposedLoss needs at least one component")
        self.components = list(components)

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        dropped: Set[ProcessId] = set()
        for component in self.components:
            dropped.update(component.losses(round_index, senders, receiver))
        return dropped

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        # Delegate once per component per round, then union per receiver.
        # When exactly one component drops anything at a receiver, its set
        # object is passed through unchanged, preserving any aliasing the
        # component established.
        maps = [
            c.losses_for_round(round_index, senders, receivers)
            for c in self.components
        ]
        if len(maps) == 1:
            return maps[0]
        out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
        for pid in receivers:
            first: Optional[AbstractSet[ProcessId]] = None
            union: Optional[Set[ProcessId]] = None
            omitted = False
            for m in maps:
                lost = m.get(pid)
                if lost is None:
                    # A component broke the batched contract by omitting
                    # this receiver; propagate the omission so the
                    # engine reports it as a ModelViolation instead of
                    # crashing here with a bare KeyError.
                    omitted = True
                    break
                if not lost:
                    continue
                if first is None:
                    first = lost
                else:
                    if union is None:
                        union = set(first)
                    union.update(lost)
            if omitted:
                continue
            if union is not None:
                out[pid] = union
            elif first is not None:
                out[pid] = first
            else:
                out[pid] = _NO_LOSS
        return out

    def reset(self) -> None:
        for component in self.components:
            component.reset()


class EventualCollisionFreedom(LossAdversary):
    """Property 1: single-broadcaster rounds deliver from ``r_cf`` on.

    Wraps an arbitrary inner adversary.  Before ``r_cf`` the inner
    adversary is unconstrained; from ``r_cf`` on, rounds with exactly one
    broadcaster deliver to everyone, while multi-broadcaster rounds still
    defer to the inner adversary (ECF says nothing about them).
    """

    def __init__(self, inner: LossAdversary, r_cf: int = 1) -> None:
        if r_cf < 1:
            raise ConfigurationError("r_cf must be >= 1")
        self.inner = inner
        self._r_cf = r_cf

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if round_index >= self._r_cf and len(senders) == 1:
            return _NO_LOSS
        return self.inner.losses(round_index, senders, receiver)

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        if round_index >= self._r_cf and len(senders) == 1:
            return dict.fromkeys(receivers, _NO_LOSS)
        return self.inner.losses_for_round(round_index, senders, receivers)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def r_cf(self) -> int:
        return self._r_cf


def satisfies_ecf(
    transmission_trace: Sequence,
    received: Sequence[Mapping[ProcessId, int]],
    r_cf: int,
) -> bool:
    """Check Property 1 over a finished execution's transmission data.

    ``transmission_trace`` holds per-round ``(c, T)`` entries (any object
    with ``broadcasters``); ``received`` the per-round ``T`` maps.  True
    when every round ``r >= r_cf`` with exactly one broadcaster delivered
    to every process.
    """
    for idx, entry in enumerate(transmission_trace):
        round_index = idx + 1
        if round_index < r_cf or entry.broadcasters != 1:
            continue
        if any(t != 1 for t in received[idx].values()):
            return False
    return True
