"""Message-loss adversaries (Definition 11, constraint 4 / Property 1).

The model allows any process to lose any subset of the messages broadcast
by *other* processes in any round (broadcasters always receive their own
message — constraint 5, which the engine enforces regardless of what an
adversary says).  A loss adversary answers one question per (round,
receiver): *which senders' messages are dropped here?*

The interface is deliberately per-receiver so adversaries can create the
non-uniform receive sets the paper motivates with the capture effect
(Section 1.1): two listeners within range of the same two broadcasters may
receive different messages.

:class:`EventualCollisionFreedom` is the Property 1 wrapper: it delegates
to an inner adversary until ``r_cf`` and thereafter forces delivery in
single-broadcaster rounds (multi-broadcaster rounds stay at the inner
adversary's mercy — ECF promises nothing about them).
"""

from __future__ import annotations

import abc
import random
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from ..core.errors import ConfigurationError
from ..core.types import ProcessId

#: The empty drop set, shared to avoid churn in the hot path.
_NO_LOSS: FrozenSet[ProcessId] = frozenset()


class LossAdversary(abc.ABC):
    """Chooses, per round and receiver, which senders' messages are lost."""

    @abc.abstractmethod
    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        """Senders whose message ``receiver`` loses in ``round_index``.

        ``senders`` lists every process that broadcast this round.  The
        returned set may include ``receiver`` itself but the engine ignores
        that entry: self-delivery is unconditional in the model.
        """

    def reset(self) -> None:
        """Forget internal state before a fresh execution (default: none)."""

    @property
    def r_cf(self) -> Optional[int]:
        """The round from which Property 1 (ECF) holds, if promised."""
        return None


class ReliableDelivery(LossAdversary):
    """No loss at all: every receiver gets every message.

    Trivially satisfies ECF with ``r_cf = 1``.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        return _NO_LOSS

    @property
    def r_cf(self) -> int:
        return 1


class SilenceLoss(LossAdversary):
    """Total loss: every receiver loses every other process's message.

    This is the harshest legal behaviour (only self-delivery survives) and
    the backdrop of Theorem 9's ``NOCF`` setting.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        return frozenset(s for s in senders if s != receiver)


class IIDLoss(LossAdversary):
    """Independent per-(receiver, sender) loss with probability ``p``.

    Models the 20-50% loss regime the empirical studies in Section 1.1
    report.  Fully seeded: the same seed replays the same loss pattern.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"loss probability must be in [0,1]: {p}")
        self.p = p
        self.seed = seed
        self._rng = random.Random(seed)

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        # Hot path: one RNG draw per (sender, receiver) pair per round.
        # Locals avoid re-resolving the attributes on every iteration.
        rand = self._rng.random
        p = self.p
        return {s for s in senders if s != receiver and rand() < p}

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class CaptureEffectLoss(LossAdversary):
    """Capture-effect loss: under contention, each receiver decodes at most
    ``capture_limit`` of the competing messages, chosen per receiver.

    With a single broadcaster the message is delivered (subject to
    ``p_single_loss`` ambient loss, default 0).  With several broadcasters
    each receiver independently "captures" a random subset of size at most
    ``capture_limit`` — reproducing the A/B/C/D example of Section 1.1
    where listeners within range of the same two senders end up with
    different receive sets.
    """

    def __init__(
        self,
        capture_limit: int = 1,
        p_single_loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        if capture_limit < 0:
            raise ConfigurationError("capture_limit must be >= 0")
        if not 0.0 <= p_single_loss <= 1.0:
            raise ConfigurationError("p_single_loss must be in [0,1]")
        self.capture_limit = capture_limit
        self.p_single_loss = p_single_loss
        self.seed = seed
        self._rng = random.Random(seed)

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        others = [s for s in senders if s != receiver]
        if not others:
            return _NO_LOSS
        if len(senders) == 1:
            if self._rng.random() < self.p_single_loss:
                return frozenset(others)
            return _NO_LOSS
        captured_count = self._rng.randint(
            0, min(self.capture_limit, len(others))
        )
        captured = set(self._rng.sample(others, captured_count))
        return {s for s in others if s not in captured}

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class PartitionLoss(LossAdversary):
    """Split the index set into groups; messages never cross groups.

    Within a group, delivery follows ``intra`` (default: reliable).  This is
    the workhorse of the impossibility constructions (Theorems 4, 8 and the
    Lemma 23 compositions): two groups evolve side by side without ever
    hearing each other.

    ``until_round`` bounds the partition: from the next round on, no loss
    (used by Theorem 4's γ execution, which must satisfy ECF).
    """

    def __init__(
        self,
        groups: Sequence[Iterable[ProcessId]],
        intra: Optional[LossAdversary] = None,
        until_round: Optional[int] = None,
    ) -> None:
        self._group_of: Dict[ProcessId, int] = {}
        for g, members in enumerate(groups):
            for pid in members:
                if pid in self._group_of:
                    raise ConfigurationError(
                        f"process {pid} appears in two partition groups"
                    )
                self._group_of[pid] = g
        self.intra = intra or ReliableDelivery()
        self.until_round = until_round

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if self.until_round is not None and round_index > self.until_round:
            return _NO_LOSS
        my_group = self._group_of.get(receiver)
        cross = {
            s
            for s in senders
            if s != receiver and self._group_of.get(s) != my_group
        }
        same_group = [
            s for s in senders if self._group_of.get(s) == my_group
        ]
        intra_lost = self.intra.losses(round_index, same_group, receiver)
        return cross | set(intra_lost)

    def reset(self) -> None:
        self.intra.reset()

    @property
    def r_cf(self) -> Optional[int]:
        if self.until_round is None:
            return None
        return self.until_round + 1


class AlphaLoss(LossAdversary):
    """The alpha-execution delivery rule (Definition 24, rule 3).

    * exactly one broadcaster  -> everyone receives the message;
    * two or more broadcasters -> every receiver keeps only its own
      message, all others are lost.

    Satisfies ECF from round 1 by construction.
    """

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if len(senders) <= 1:
            return _NO_LOSS
        return {s for s in senders if s != receiver}

    @property
    def r_cf(self) -> int:
        return 1


class ScriptedLoss(LossAdversary):
    """Loss driven by an explicit callable — the fully general adversary.

    ``fn(round_index, senders, receiver)`` returns the senders dropped at
    ``receiver``.  Lower-bound constructions use this to realise exactly
    the receive behaviour their proofs prescribe.
    """

    def __init__(
        self,
        fn: Callable[[int, Sequence[ProcessId], ProcessId], AbstractSet[ProcessId]],
        r_cf: Optional[int] = None,
    ) -> None:
        self._fn = fn
        self._r_cf = r_cf

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        return self._fn(round_index, senders, receiver)

    @property
    def r_cf(self) -> Optional[int]:
        return self._r_cf


class ComposedLoss(LossAdversary):
    """Union of several adversaries' drop sets: a message survives only if
    *every* component delivers it.  Useful to stack ambient IID loss on top
    of a structural pattern."""

    def __init__(self, components: Sequence[LossAdversary]) -> None:
        if not components:
            raise ConfigurationError("ComposedLoss needs at least one component")
        self.components = list(components)

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        dropped: Set[ProcessId] = set()
        for component in self.components:
            dropped.update(component.losses(round_index, senders, receiver))
        return dropped

    def reset(self) -> None:
        for component in self.components:
            component.reset()


class EventualCollisionFreedom(LossAdversary):
    """Property 1: single-broadcaster rounds deliver from ``r_cf`` on.

    Wraps an arbitrary inner adversary.  Before ``r_cf`` the inner
    adversary is unconstrained; from ``r_cf`` on, rounds with exactly one
    broadcaster deliver to everyone, while multi-broadcaster rounds still
    defer to the inner adversary (ECF says nothing about them).
    """

    def __init__(self, inner: LossAdversary, r_cf: int = 1) -> None:
        if r_cf < 1:
            raise ConfigurationError("r_cf must be >= 1")
        self.inner = inner
        self._r_cf = r_cf

    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if round_index >= self._r_cf and len(senders) == 1:
            return _NO_LOSS
        return self.inner.losses(round_index, senders, receiver)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def r_cf(self) -> int:
        return self._r_cf


def satisfies_ecf(
    transmission_trace: Sequence,
    received: Sequence[Mapping[ProcessId, int]],
    r_cf: int,
) -> bool:
    """Check Property 1 over a finished execution's transmission data.

    ``transmission_trace`` holds per-round ``(c, T)`` entries (any object
    with ``broadcasters``); ``received`` the per-round ``T`` maps.  True
    when every round ``r >= r_cf`` with exactly one broadcaster delivered
    to every process.
    """
    for idx, entry in enumerate(transmission_trace):
        round_index = idx + 1
        if round_index < r_cf or entry.broadcasters != 1:
            continue
        if any(t != 1 for t in received[idx].values()):
            return False
    return True
