"""Crash adversaries (Definition 11, constraint 2 / Section 3.3).

Any process may crash in any round.  The model's nondeterminism allows two
timings, both of which we support:

* ``after_send=True`` — the process broadcasts its round-``r`` message and
  then fails instead of transitioning (the literal reading of constraint 2:
  ``M_r`` comes from ``C_{r-1}`` but ``C_r`` is the fail state);
* ``after_send=False`` — the process is already failed when round ``r``
  starts, so it stays silent (equivalent to crashing between rounds).

Crashes are permanent: the engine never steps a crashed process again.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.types import ProcessId


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One crash: which process, and whether its final broadcast goes out."""

    pid: ProcessId
    after_send: bool = True


class CrashAdversary(abc.ABC):
    """Chooses which live processes crash in each round."""

    @abc.abstractmethod
    def crashes(
        self, round_index: int, live: Sequence[ProcessId]
    ) -> Tuple[CrashEvent, ...]:
        """Crash events for ``round_index`` among the ``live`` processes."""

    def reset(self) -> None:
        """Forget internal state before a fresh execution (default: none)."""

    @property
    def last_crash_round(self):
        """Upper bound on crash activity, when known (else ``None``).

        Algorithm 3's termination bound is phrased "after failures cease";
        experiments use this to anchor the measurement.
        """
        return None


class NoCrashes(CrashAdversary):
    """The failure-free adversary."""

    def crashes(
        self, round_index: int, live: Sequence[ProcessId]
    ) -> Tuple[CrashEvent, ...]:
        return ()

    @property
    def last_crash_round(self) -> int:
        return 0


class ScheduledCrashes(CrashAdversary):
    """Crashes at explicitly scripted (round, process) points.

    ``schedule`` maps a round to the events occurring in that round.  Events
    naming already-crashed or unknown processes are ignored, mirroring the
    model (crashing a failed process is a no-op).
    """

    def __init__(
        self, schedule: Mapping[int, Iterable[CrashEvent]]
    ) -> None:
        self._schedule: Dict[int, Tuple[CrashEvent, ...]] = {}
        for round_index, events in schedule.items():
            if round_index < 1:
                raise ConfigurationError("crash rounds are 1-based")
            self._schedule[round_index] = tuple(events)

    @classmethod
    def at(
        cls, schedule: Mapping[int, Iterable[ProcessId]], after_send: bool = True
    ) -> "ScheduledCrashes":
        """Shorthand: ``{round: [pids]}`` with a uniform send timing."""
        return cls(
            {
                r: [CrashEvent(pid, after_send=after_send) for pid in pids]
                for r, pids in schedule.items()
            }
        )

    def crashes(
        self, round_index: int, live: Sequence[ProcessId]
    ) -> Tuple[CrashEvent, ...]:
        live_set = set(live)
        return tuple(
            ev
            for ev in self._schedule.get(round_index, ())
            if ev.pid in live_set
        )

    @property
    def last_crash_round(self) -> int:
        return max(self._schedule, default=0)


class SeededRandomCrashes(CrashAdversary):
    """Independent per-round crash coin flips, bounded in count and time.

    Each live process crashes with probability ``p`` per round, up to
    ``max_crashes`` total, and never after ``deadline`` (so termination
    measurements "after failures cease" remain meaningful).  At least one
    process is always spared: the consensus properties are only interesting
    when a correct process exists.
    """

    def __init__(
        self,
        p: float,
        max_crashes: int,
        deadline: int,
        seed: int = 0,
        after_send: bool = True,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("crash probability must be in [0,1]")
        if max_crashes < 0:
            raise ConfigurationError("max_crashes must be >= 0")
        if deadline < 0:
            raise ConfigurationError("deadline must be >= 0")
        self.p = p
        self.max_crashes = max_crashes
        self.deadline = deadline
        self.seed = seed
        self.after_send = after_send
        self._rng = random.Random(seed)
        self._crashed = 0

    def crashes(
        self, round_index: int, live: Sequence[ProcessId]
    ) -> Tuple[CrashEvent, ...]:
        if round_index > self.deadline or self._crashed >= self.max_crashes:
            return ()
        events = []
        for pid in sorted(live):
            if len(live) - len(events) <= 1:
                break  # always spare at least one process
            if self._crashed + len(events) >= self.max_crashes:
                break
            if self._rng.random() < self.p:
                events.append(CrashEvent(pid, after_send=self.after_send))
        self._crashed += len(events)
        return tuple(events)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._crashed = 0

    @property
    def last_crash_round(self) -> int:
        return self.deadline
