"""Adversaries controlling the model's nondeterminism.

The formal model leaves three choices open each round: which messages are
lost at which receivers (Definition 11, constraint 4), which processes
crash (constraint 2), and what unconstrained detector/CM advice looks like
(handled inside :mod:`repro.detectors` and :mod:`repro.contention`).  This
package owns the first two:

* :mod:`repro.adversary.loss`  — message-loss adversaries, including the
  eventual-collision-freedom wrapper (Property 1) and the scripted
  partition/alpha adversaries the lower bounds use;
* :mod:`repro.adversary.crash` — crash schedules;
* :mod:`repro.adversary.churn` — dynamic-membership schedules (leaves,
  joins, fresh-state rejoins);
* :mod:`repro.adversary.scenarios` — canned environment bundles used by the
  experiments and examples.
"""

from .churn import (
    BurstChurn,
    ChurnAdversary,
    ChurnEvent,
    InformedMinorityChurn,
    NoChurn,
    ScheduledChurn,
    SeededChurn,
)
from .crash import (
    CrashAdversary,
    CrashEvent,
    NoCrashes,
    ScheduledCrashes,
    SeededRandomCrashes,
)
from .loss import (
    AlphaLoss,
    ArrayRoundLosses,
    CaptureEffectLoss,
    ComposedLoss,
    EventualCollisionFreedom,
    IIDLoss,
    LossAdversary,
    PartitionLoss,
    ReliableDelivery,
    ResolvedRoundLosses,
    ScriptedLoss,
    SilenceLoss,
)

__all__ = [
    "LossAdversary",
    "ResolvedRoundLosses",
    "ArrayRoundLosses",
    "ReliableDelivery",
    "SilenceLoss",
    "IIDLoss",
    "CaptureEffectLoss",
    "PartitionLoss",
    "AlphaLoss",
    "ScriptedLoss",
    "ComposedLoss",
    "EventualCollisionFreedom",
    "CrashAdversary",
    "CrashEvent",
    "NoCrashes",
    "ScheduledCrashes",
    "SeededRandomCrashes",
    "ChurnAdversary",
    "ChurnEvent",
    "NoChurn",
    "ScheduledChurn",
    "SeededChurn",
    "BurstChurn",
    "InformedMinorityChurn",
]
