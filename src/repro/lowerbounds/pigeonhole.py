"""The counting arguments of Lemmas 21/22 and Theorem 9, executable.

Each lemma says: among enough canonical executions whose per-round
broadcast behaviour is drawn from a small alphabet, two must share a
prefix.  We don't merely assert this — we *search*: run the executions,
bucket them by broadcast-count prefix, and return a colliding pair.  For
prefix lengths at or below the lemma's bound the pigeonhole principle
guarantees the search succeeds, which the tests verify.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import ConsensusAlgorithm
from ..core.errors import ConfigurationError
from ..core.records import ExecutionResult, RecordPolicy
from ..core.types import ProcessId, Value
from .alpha import alpha_execution, beta_execution, binary_broadcast_sequence


# ----------------------------------------------------------------------
# Bound calculators (the k of each lemma)
# ----------------------------------------------------------------------
def lemma21_bound(value_count: int) -> int:
    """Lemma 21's prefix length: ``⌊lg|V| / 2⌋ - 1`` rounds.

    With ``3^k < |V|/2`` guaranteed at this k, at least two of the ``|V|``
    alpha executions share a basic broadcast count prefix.  Floored at 1
    so the machinery still runs for tiny value sets (where the bound is
    vacuous and the tests expect collisions to be found trivially).
    """
    if value_count < 2:
        raise ConfigurationError("lemma 21 needs |V| >= 2")
    return max(1, math.floor(math.log2(value_count) / 2) - 1)


def lemma22_bound(value_count: int, id_count: int, n: int) -> int:
    """Lemma 22's prefix length ``⌊lg((|V|·|I|) / (n|V| + |I|))⌋ - 1``.

    This is the non-anonymous refinement: executions now vary over both
    the value and the (disjoint, size-``n``) index set.
    """
    if value_count < 2:
        raise ConfigurationError("lemma 22 needs |V| >= 2")
    if id_count < 2 * n or id_count % n != 0:
        raise ConfigurationError(
            "lemma 22 needs |I| a multiple of n with |I| >= 2n"
        )
    ratio = (value_count * id_count) / (n * value_count + id_count)
    return max(1, math.floor(math.log2(ratio)) - 1)


def theorem9_bound(value_count: int) -> int:
    """Theorem 9's prefix length: ``lg|V| - 1`` rounds (binary channel)."""
    if value_count < 2:
        raise ConfigurationError("theorem 9 needs |V| >= 2")
    return max(1, math.floor(math.log2(value_count)) - 1)


# ----------------------------------------------------------------------
# Collision searches
# ----------------------------------------------------------------------
def lemma21_find_pair(
    algorithm: ConsensusAlgorithm,
    indices: Sequence[ProcessId],
    values: Sequence[Value],
    k: Optional[int] = None,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> Optional[Tuple[Value, Value, ExecutionResult, ExecutionResult]]:
    """Find ``v != v'`` whose alpha executions share a k-round BBCS.

    Runs ``α_P(v)`` for every ``v ∈ V`` and buckets by the basic broadcast
    count sequence through ``k`` (default: Lemma 21's bound, where a
    collision is guaranteed).  Returns the first colliding pair with the
    two execution prefixes, or ``None`` if every sequence is distinct
    (possible only for ``k`` above the bound).

    The search itself only consults broadcast-count sequences, so large
    sweeps may pass ``record_policy=RecordPolicy.SUMMARY`` and drop FULL
    retention; keep the default when the returned executions feed the
    Lemma 23 composition (it replays per-round views).
    """
    if k is None:
        k = lemma21_bound(len(values))
    buckets: Dict[Tuple, Tuple[Value, ExecutionResult]] = {}
    for v in values:
        result = alpha_execution(
            algorithm, indices, v, k, record_policy=record_policy
        )
        key = result.broadcast_count_sequence(k)
        if key in buckets:
            other_v, other_result = buckets[key]
            return other_v, v, other_result, result
        buckets[key] = (v, result)
    return None


def lemma22_find_pair(
    algorithm: ConsensusAlgorithm,
    id_space: Sequence[ProcessId],
    n: int,
    values: Sequence[Value],
    k: Optional[int] = None,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> Optional[
    Tuple[
        Tuple[ProcessId, ...],
        Value,
        Tuple[ProcessId, ...],
        Value,
        ExecutionResult,
        ExecutionResult,
    ]
]:
    """Find two alpha executions over *disjoint* index sets and *distinct*
    values sharing a k-round BBCS (Lemma 22).

    Partitions ``I`` into ``|I|/n`` disjoint size-``n`` sets and considers
    every (set, value) combination.  Among sequence-sharing executions at
    the lemma's ``k`` there must be two differing in both coordinates.
    """
    ids = list(id_space)
    if len(ids) % n != 0:
        raise ConfigurationError("|I| must be a multiple of n")
    if k is None:
        k = lemma22_bound(len(values), len(ids), n)
    groups = [
        tuple(ids[g * n : (g + 1) * n]) for g in range(len(ids) // n)
    ]
    buckets: Dict[Tuple, List[Tuple[Tuple[ProcessId, ...], Value, ExecutionResult]]] = {}
    for group in groups:
        for v in values:
            result = alpha_execution(
                algorithm, group, v, k, record_policy=record_policy
            )
            key = result.broadcast_count_sequence(k)
            for other_group, other_v, other_result in buckets.get(key, ()):
                if other_group != group and other_v != v:
                    return (
                        other_group, other_v, group, v, other_result, result
                    )
            buckets.setdefault(key, []).append((group, v, result))
    return None


def theorem9_find_pair(
    algorithm: ConsensusAlgorithm,
    indices: Sequence[ProcessId],
    values: Sequence[Value],
    k: Optional[int] = None,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> Optional[Tuple[Value, Value, ExecutionResult, ExecutionResult]]:
    """Find ``v != v'`` whose beta executions share a k-round *binary*
    broadcast sequence (Theorem 9's counting step).

    ``record_policy=RecordPolicy.SUMMARY`` suffices for the search: the
    binary sequence is derived from broadcast counts alone.
    """
    if k is None:
        k = theorem9_bound(len(values))
    buckets: Dict[Tuple, Tuple[Value, ExecutionResult]] = {}
    for v in values:
        result = beta_execution(
            algorithm, indices, v, k, record_policy=record_policy
        )
        key = binary_broadcast_sequence(result, k)
        if key in buckets:
            other_v, other_result = buckets[key]
            return other_v, v, other_result, result
        buckets[key] = (v, result)
    return None
