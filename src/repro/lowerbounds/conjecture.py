"""Empirical exploration of Conjecture 1 (Section 8.3.4).

Theorem 7's bound carries a ``lg(|I|/n)`` term because Lemma 22's
counting argument only considers the ``|I|/n`` *disjoint* index sets of a
fixed partition.  Conjecture 1 claims a richer argument over overlapping
subsets would lift the term to ``lg|I|``.

The conjecture is about adversarial power: more candidate executions mean
the pigeonhole keeps finding composable (same broadcast-count prefix,
disjoint sets, distinct values) pairs at *longer* prefixes, forcing any
algorithm to stay undecided longer.  That part we can measure.  For a
given algorithm we search for the longest prefix at which a composable
pair still exists,

* restricted to one disjoint partition (Lemma 22's universe), versus
* over all (or a large sample of) n-subsets of ``I``,

and compare both with the closed-form Lemma 22 bound and the conjectured
``lg`` targets.  Finding longer-surviving pairs in the larger universe is
evidence *for* the conjecture's mechanism (it does not prove the
conjecture, which needs a worst-case argument over all algorithms — the
experiment's tables say exactly this).
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import ConsensusAlgorithm
from ..core.errors import ConfigurationError
from ..core.records import ExecutionResult, RecordPolicy
from ..core.types import ProcessId, Value
from .alpha import alpha_execution

#: One pigeonhole candidate: (index set, value, execution prefix).
Candidate = Tuple[Tuple[ProcessId, ...], Value, ExecutionResult]


@dataclasses.dataclass
class PrefixSearchResult:
    """Outcome of one composable-pair search at prefix length ``k``."""

    k: int
    universe_size: int
    pair: Optional[Tuple[Candidate, Candidate]]

    @property
    def found(self) -> bool:
        return self.pair is not None


def _subsets(
    id_space: Sequence[ProcessId],
    n: int,
    mode: str,
    max_subsets: int,
    seed: int,
) -> List[Tuple[ProcessId, ...]]:
    ids = sorted(id_space)
    if mode == "disjoint":
        if len(ids) % n != 0:
            raise ConfigurationError("|I| must be a multiple of n")
        return [
            tuple(ids[g * n:(g + 1) * n]) for g in range(len(ids) // n)
        ]
    if mode != "overlapping":
        raise ConfigurationError("mode must be 'disjoint' or 'overlapping'")
    all_subsets = list(itertools.combinations(ids, n))
    if len(all_subsets) <= max_subsets:
        return all_subsets
    return random.Random(seed).sample(all_subsets, max_subsets)


def find_composable_pair(
    algorithm: ConsensusAlgorithm,
    id_space: Sequence[ProcessId],
    n: int,
    values: Sequence[Value],
    k: int,
    mode: str = "overlapping",
    max_subsets: int = 128,
    seed: int = 0,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> PrefixSearchResult:
    """Search for two alpha executions sharing a ``k``-round broadcast
    prefix, over disjoint index sets and distinct values.

    ``mode='disjoint'`` restricts the universe to Lemma 22's partition;
    ``mode='overlapping'`` ranges over all (sampled) n-subsets — the
    universe Conjecture 1 proposes.  The bucketing reads only broadcast
    counts, so ``record_policy=RecordPolicy.SUMMARY`` works whenever the
    returned pair is not fed to the Lemma 23 composition afterwards.
    """
    subsets = _subsets(id_space, n, mode, max_subsets, seed)
    buckets: Dict[Tuple, List[Candidate]] = {}
    for subset in subsets:
        for v in values:
            result = alpha_execution(
                algorithm, subset, v, k, record_policy=record_policy
            )
            key = result.broadcast_count_sequence(k)
            for other in buckets.get(key, ()):
                other_set, other_v, _ = other
                if other_v != v and not (set(other_set) & set(subset)):
                    return PrefixSearchResult(
                        k=k,
                        universe_size=len(subsets) * len(values),
                        pair=(other, (subset, v, result)),
                    )
            buckets.setdefault(key, []).append((subset, v, result))
    return PrefixSearchResult(
        k=k, universe_size=len(subsets) * len(values), pair=None
    )


def max_composable_prefix(
    algorithm: ConsensusAlgorithm,
    id_space: Sequence[ProcessId],
    n: int,
    values: Sequence[Value],
    mode: str,
    k_limit: int = 24,
    max_subsets: int = 128,
    seed: int = 0,
    record_policy: RecordPolicy = RecordPolicy.SUMMARY,
) -> int:
    """The longest ``k`` at which a composable pair still exists.

    Scans upward from 1; the first ``k`` with no pair ends the scan
    (prefix equality is monotone: a pair at ``k`` is a pair at every
    shorter prefix).

    Only the *existence* of a pair is consulted, never its per-round
    views, so the scan defaults to ``SUMMARY`` retention — the E15-style
    sweeps over many ``|I|`` and ``k`` never hold full records.
    """
    best = 0
    for k in range(1, k_limit + 1):
        outcome = find_composable_pair(
            algorithm, id_space, n, values, k,
            mode=mode, max_subsets=max_subsets, seed=seed,
            record_policy=record_policy,
        )
        if not outcome.found:
            break
        best = k
    return best
