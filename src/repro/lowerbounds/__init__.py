"""The Section 8 lower bounds, as executable adversarial constructions.

Each impossibility/round-complexity proof in the paper is constructive: it
builds specific executions (alpha/beta prefixes, then a composed gamma
execution) and derives a contradiction from indistinguishability.  This
package runs those constructions against *real algorithm code*:

* :mod:`repro.lowerbounds.alpha` — alpha executions (Definition 24) and
  basic broadcast count sequences (Definition 22), plus the symmetric
  "beta" executions of Theorem 9;
* :mod:`repro.lowerbounds.pigeonhole` — the counting Lemmas 21 and 22:
  find two executions sharing a broadcast-count prefix;
* :mod:`repro.lowerbounds.compose` — Lemma 23: merge two alpha executions
  into a legal half-AC gamma execution and verify indistinguishability
  mechanically;
* :mod:`repro.lowerbounds.theorems` — Theorems 4, 5, 6, 7, 8, 9 as witness
  generators that either exhibit a safety violation (for algorithms that
  decide "too fast") or certify that the bound was respected.
"""

from .alpha import (
    alpha_environment,
    alpha_execution,
    beta_execution,
    binary_broadcast_sequence,
)
from .compose import ComposedExecution, compose_alpha_executions
from .conjecture import (
    PrefixSearchResult,
    find_composable_pair,
    max_composable_prefix,
)
from .counting import CountingWitness, counting_impossibility_witness
from .pigeonhole import (
    lemma21_bound,
    lemma21_find_pair,
    lemma22_bound,
    lemma22_find_pair,
    theorem9_bound,
    theorem9_find_pair,
)
from .theorems import (
    WitnessOutcome,
    eventual_completeness_witness,
    theorem4_witness,
    theorem5_witness,
    theorem6_witness,
    theorem7_witness,
    theorem8_witness,
    theorem9_witness,
)

__all__ = [
    "alpha_environment",
    "alpha_execution",
    "beta_execution",
    "binary_broadcast_sequence",
    "lemma21_bound",
    "lemma21_find_pair",
    "lemma22_bound",
    "lemma22_find_pair",
    "theorem9_bound",
    "theorem9_find_pair",
    "ComposedExecution",
    "compose_alpha_executions",
    "PrefixSearchResult",
    "find_composable_pair",
    "max_composable_prefix",
    "CountingWitness",
    "counting_impossibility_witness",
    "WitnessOutcome",
    "eventual_completeness_witness",
    "theorem4_witness",
    "theorem5_witness",
    "theorem6_witness",
    "theorem7_witness",
    "theorem8_witness",
    "theorem9_witness",
]
