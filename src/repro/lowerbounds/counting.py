"""Impossibility of anonymous counting with a leader-election service.

The other half of Section 4.1's remark: with only a leader-election
service (and a half-complete detector), anonymous processes cannot count
themselves.  The executable argument is the familiar indistinguishability
sandwich, at the level of *population size* rather than initial value:

* System A: a leader plus **one** anonymous follower.
* System B: the same leader code plus **two** anonymous followers.

Fix the adversary so that (i) followers, being anonymous and symmetric,
receive identical advice and messages in both systems — when both of B's
followers broadcast, each keeps only its own message, exactly what A's
lone follower sees; (ii) whenever B's two followers broadcast together,
the leader receives exactly one of the two messages — *half* of them —
which a half-complete detector may leave unflagged, making the leader's
view identical to A's, where the single follower's message arrives
cleanly (and accuracy forces ``null`` there too).

Any deterministic anonymous algorithm therefore drives the leader through
identical states in A and B: whatever count it outputs is wrong in at
least one system.  :func:`counting_impossibility_witness` builds both
executions for a candidate algorithm and checks the indistinguishability
mechanically.

Note the contrast that makes the k-wake-up protocol work: there, the
*service* separates the followers in time, so their announcements arrive
in different rounds and no collision needs detecting at all.
"""

from __future__ import annotations

import dataclasses
from typing import AbstractSet, Dict, Optional, Sequence

from ..adversary.crash import NoCrashes
from ..adversary.loss import ScriptedLoss
from ..contention.services import LeaderElectionService
from ..core.algorithm import Algorithm
from ..core.environment import Environment
from ..core.errors import ConfigurationError
from ..core.execution import ExecutionEngine
from ..core.records import ExecutionResult, indistinguishable
from ..core.types import CollisionAdvice, ProcessId
from ..detectors.detector import ParametricCollisionDetector
from ..detectors.policy import CallbackPolicy
from ..detectors.properties import AccuracyMode, Completeness

LEADER: ProcessId = 0


@dataclasses.dataclass
class CountingWitness:
    """Evidence that a candidate counter cannot distinguish A from B."""

    small: ExecutionResult
    large: ExecutionResult
    rounds: int
    leader_indistinguishable: bool
    followers_indistinguishable: bool
    small_outputs: Sequence[Optional[int]]
    large_outputs: Sequence[Optional[int]]

    @property
    def counting_defeated(self) -> bool:
        """True when the leader's view — hence its output — is identical
        across populations of different sizes."""
        return self.leader_indistinguishable


def _follower_isolation_loss(leader: ProcessId):
    """Delivery rule for both systems.

    Leader messages reach everyone.  Follower messages reach the leader
    only when the round's follower broadcasts can masquerade as a single
    one: the adversary always delivers exactly one follower message to
    the leader (dropping the rest), and followers never hear each other.
    """

    def rule(
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        follower_senders = sorted(s for s in senders if s != leader)
        if receiver == leader:
            # Keep only the lowest-index follower message.
            return set(follower_senders[1:])
        # Followers: hear the leader, never each other.
        return {s for s in follower_senders if s != receiver}

    return rule


def _half_silent_detector():
    """A half-AC detector that never volunteers information.

    Free choices all answer ``null``; the composition is arranged so that
    the only losses are the leader missing at most half of simultaneous
    follower broadcasts (legal silence for half completeness) and
    followers missing each other's halves symmetrically.
    """

    def advice(
        round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        return CollisionAdvice.NULL

    return ParametricCollisionDetector(
        Completeness.HALF,
        AccuracyMode.ALWAYS,
        policy=CallbackPolicy(advice),
    )


def _run_system(
    algorithm: Algorithm, follower_count: int, rounds: int
) -> ExecutionResult:
    indices = tuple(range(follower_count + 1))   # leader is index 0
    env = Environment(
        indices=indices,
        detector=_half_silent_detector(),
        contention=LeaderElectionService(1, leader=LEADER),
        loss=ScriptedLoss(_follower_isolation_loss(LEADER)),
        crash=NoCrashes(),
    )
    env.reset()
    processes = algorithm.spawn_all(indices)
    engine = ExecutionEngine(env, processes)
    result = engine.run(rounds, until_all_decided=False)
    # Preserve the processes so the caller can read protocol outputs.
    result.processes = processes  # type: ignore[attr-defined]
    return result


def counting_impossibility_witness(
    algorithm: Algorithm,
    rounds: int = 40,
    small_followers: int = 1,
    large_followers: int = 2,
) -> CountingWitness:
    """Run the two-population construction against a counting algorithm.

    The candidate must be anonymous (Definition 3) — with IDs the leader
    could tell followers apart and the construction rightly fails.
    """
    if not algorithm.is_anonymous:
        raise ConfigurationError(
            "the counting impossibility applies to anonymous algorithms"
        )
    if not 0 < small_followers < large_followers:
        raise ConfigurationError("need 0 < small_followers < large_followers")
    if large_followers > 2 * small_followers:
        raise ConfigurationError(
            "half completeness only hides up to half of the messages: "
            "need large_followers <= 2 * small_followers"
        )
    small = _run_system(algorithm, small_followers, rounds)
    large = _run_system(algorithm, large_followers, rounds)

    leader_ok = indistinguishable(small, large, LEADER, rounds)
    followers_ok = all(
        indistinguishable(small, large, 1, rounds, pid_b=pid)
        for pid in range(1, large_followers + 1)
    )

    def outputs(result: ExecutionResult) -> Sequence[Optional[int]]:
        processes = getattr(result, "processes", {})
        return [
            getattr(processes[pid], "current_count", None)
            for pid in result.indices
        ]

    return CountingWitness(
        small=small,
        large=large,
        rounds=rounds,
        leader_indistinguishable=leader_ok,
        followers_indistinguishable=followers_ok,
        small_outputs=outputs(small),
        large_outputs=outputs(large),
    )
