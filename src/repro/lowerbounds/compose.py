"""Lemma 23: composing two alpha executions into a gamma execution.

Given two alpha executions over disjoint index sets ``R`` and ``R'`` with
the same basic broadcast count sequence through round ``k``, Lemma 23
builds a single execution of the union system in which:

* for the first ``k`` rounds, messages never cross the ``R``/``R'``
  boundary, and within each group the alpha delivery rule applies;
* the collision detector replays each group's alpha advice — and the
  BBCS equality is exactly what makes that advice *legal for half-AC*:
  the only undetected loss happens in rounds where each group has one
  broadcaster (``c = 2``, each receiver got exactly half — which
  half-completeness, unlike majority completeness, tolerates);
* the contention manager runs two "leaders" (``min(R)`` and ``min(R')``)
  until ``k`` and then stabilizes, satisfying the leader-election
  property;
* from round ``k + 1`` on everything is clean, so the composed execution
  satisfies eventual collision freedom.

The composition is *checked*, not assumed: the parametric detector
enforces half-AC obligations over the scripted advice (a script that
violated them would be overridden and the indistinguishability check
below would fail loudly), and :func:`compose_alpha_executions` verifies
Definition 12 indistinguishability for every process mechanically.
"""

from __future__ import annotations

import dataclasses
from typing import AbstractSet, Dict, FrozenSet, Optional, Sequence, Tuple

from ..adversary.crash import NoCrashes
from ..adversary.loss import ScriptedLoss
from ..contention.services import ScriptedContentionManager
from ..core.algorithm import ConsensusAlgorithm
from ..core.environment import Environment
from ..core.errors import ConfigurationError
from ..core.execution import ExecutionEngine
from ..core.records import ExecutionResult, RecordPolicy, indistinguishable
from ..core.types import CollisionAdvice, ProcessId, Value
from ..detectors.detector import ParametricCollisionDetector
from ..detectors.policy import CallbackPolicy
from ..detectors.properties import AccuracyMode, Completeness
from .alpha import group_broadcast_counts


@dataclasses.dataclass
class ComposedExecution:
    """The gamma execution plus the evidence that the composition worked."""

    gamma: ExecutionResult
    alpha_a: ExecutionResult
    alpha_b: ExecutionResult
    group_a: Tuple[ProcessId, ...]
    group_b: Tuple[ProcessId, ...]
    value_a: Value
    value_b: Value
    k: int
    indistinguishable_a: bool
    indistinguishable_b: bool

    @property
    def indistinguishability_holds(self) -> bool:
        """Lemma 23's conclusion, verified mechanically for every process."""
        return self.indistinguishable_a and self.indistinguishable_b


def _group_loss_rule(
    group_of: Dict[ProcessId, int], k: int
):
    """Delivery for gamma: per-group alpha rule through round k, then none."""

    def rule(
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        if round_index > k:
            return frozenset()
        my_group = group_of.get(receiver)
        in_group = [s for s in senders if group_of.get(s) == my_group]
        lost = {
            s for s in senders if group_of.get(s) != my_group
        }
        if len(in_group) > 1:
            lost.update(s for s in in_group if s != receiver)
        return lost

    return rule


def _scripted_advice(
    group_of: Dict[ProcessId, int],
    counts_by_group: Dict[int, Tuple[int, ...]],
    k: int,
):
    """Replay each group's alpha collision advice through round k.

    In an alpha execution the (complete, accurate) detector reports ``±``
    exactly when two or more processes broadcast.  Afterwards, behave
    honestly.
    """

    def advice(
        round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        if round_index <= k:
            group = group_of[pid]
            group_count = counts_by_group[group][round_index - 1]
            return (
                CollisionAdvice.COLLISION
                if group_count >= 2
                else CollisionAdvice.NULL
            )
        return (
            CollisionAdvice.COLLISION if t < c else CollisionAdvice.NULL
        )

    return advice


def compose_alpha_executions(
    algorithm: ConsensusAlgorithm,
    alpha_a: ExecutionResult,
    alpha_b: ExecutionResult,
    value_a: Value,
    value_b: Value,
    k: int,
    extra_rounds: int = 0,
    completeness: Completeness = Completeness.HALF,
) -> ComposedExecution:
    """Build and verify Lemma 23's gamma execution.

    ``alpha_a``/``alpha_b`` must be alpha executions over disjoint index
    sets with equal basic broadcast count sequences through ``k`` (as
    produced by the :mod:`repro.lowerbounds.pigeonhole` searches).  The
    gamma execution runs for ``k`` rounds under the composed adversary and
    then up to ``extra_rounds`` clean rounds (stopping early once every
    process has decided).

    ``completeness`` is the obligation the gamma detector enforces over
    the scripted advice.  HALF (the default) is Lemma 23's class; ZERO is
    used by the phased-completeness extension, where the scripted silence
    is legal because pre-``r_comp`` only zero completeness binds.
    Majority or full completeness would reject the script — that is the
    content of the half/maj gap, and tests assert it.
    """
    group_a = alpha_a.indices
    group_b = alpha_b.indices
    for name, alpha in (("alpha_a", alpha_a), ("alpha_b", alpha_b)):
        if alpha.record_policy is not RecordPolicy.FULL:
            raise ConfigurationError(
                f"{name} ran under RecordPolicy."
                f"{alpha.record_policy.name}; the Lemma 23 composition "
                "replays per-round views and checks Definition 12 "
                "indistinguishability, which need FULL retention — "
                "re-run the pigeonhole search with record_policy=FULL "
                "for the pair being composed"
            )
    if set(group_a) & set(group_b):
        raise ConfigurationError("alpha executions must use disjoint sets")
    if alpha_a.broadcast_count_sequence(k) != alpha_b.broadcast_count_sequence(k):
        raise ConfigurationError(
            "alpha executions do not share a broadcast count prefix"
        )
    if alpha_a.rounds < k or alpha_b.rounds < k:
        raise ConfigurationError("alpha prefixes are shorter than k")

    group_of: Dict[ProcessId, int] = {}
    for pid in group_a:
        group_of[pid] = 0
    for pid in group_b:
        group_of[pid] = 1
    counts_by_group = {
        0: group_broadcast_counts(alpha_a, k),
        1: group_broadcast_counts(alpha_b, k),
    }

    detector = ParametricCollisionDetector(
        completeness,
        AccuracyMode.ALWAYS,
        policy=CallbackPolicy(
            _scripted_advice(group_of, counts_by_group, k)
        ),
    )
    contention = ScriptedContentionManager(
        script={
            r: [min(group_a), min(group_b)] for r in range(1, k + 1)
        },
        default="leader",
        stabilization_round=k + 1,
    )
    loss = ScriptedLoss(_group_loss_rule(group_of, k), r_cf=k + 1)

    environment = Environment(
        indices=tuple(sorted(group_a + group_b)),
        detector=detector,
        contention=contention,
        loss=loss,
        crash=NoCrashes(),
    )
    assignment = {pid: value_a for pid in group_a}
    assignment.update({pid: value_b for pid in group_b})
    processes = algorithm.instantiate(assignment)
    engine = ExecutionEngine(environment, processes, assignment)
    engine.run(k, until_all_decided=False)
    if extra_rounds:
        engine.run(extra_rounds, until_all_decided=True)
    gamma = engine.result()

    indist_a = all(
        indistinguishable(gamma, alpha_a, pid, k) for pid in group_a
    )
    indist_b = all(
        indistinguishable(gamma, alpha_b, pid, k) for pid in group_b
    )
    return ComposedExecution(
        gamma=gamma,
        alpha_a=alpha_a,
        alpha_b=alpha_b,
        group_a=group_a,
        group_b=group_b,
        value_a=value_a,
        value_b=value_b,
        k=k,
        indistinguishable_a=indist_a,
        indistinguishable_b=indist_b,
    )
