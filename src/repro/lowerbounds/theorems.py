"""Theorems 4-9 as executable witness constructions.

Every lower bound in Section 8 has the same skeleton: *assume* an
algorithm decides under the stated hypotheses, build canonical executions,
compose them, and exhibit a safety violation.  Running that skeleton
against real code gives a mechanical dichotomy — for each candidate
algorithm the witness generator returns one of:

* ``violation`` — the candidate decided within the construction's window,
  and the composed execution shows agreement (or uniform validity)
  breaking; this is what happens to the naive baselines, and it is the
  executable content of the impossibility proof;
* ``no violation`` — the candidate did *not* decide within the window,
  i.e. it respects the bound (what the paper's algorithms do), or it never
  decides at all under these hypotheses (what correctness demands when the
  hypotheses make consensus unsolvable).

All constructions verify Definition 12 indistinguishability mechanically
rather than assuming it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..adversary.crash import NoCrashes
from ..adversary.loss import PartitionLoss, ReliableDelivery, SilenceLoss
from ..contention.services import (
    LeaderElectionService,
    NoContentionManager,
    ScriptedContentionManager,
)
from ..core.algorithm import ConsensusAlgorithm
from ..core.environment import Environment
from ..core.errors import ConfigurationError
from ..core.execution import ExecutionEngine
from ..core.records import ExecutionResult, indistinguishable
from ..core.types import CollisionAdvice, ProcessId, Value
from ..detectors.detector import (
    CollisionDetector,
    ParametricCollisionDetector,
    no_cd_detector,
)
from ..detectors.policy import BenignPolicy, CallbackPolicy, NoisyPolicy
from ..detectors.properties import AccuracyMode, Completeness
from .alpha import alpha_execution, beta_execution, binary_broadcast_sequence
from .compose import ComposedExecution, compose_alpha_executions
from .pigeonhole import (
    lemma21_bound,
    lemma21_find_pair,
    lemma22_bound,
    lemma22_find_pair,
    theorem9_bound,
    theorem9_find_pair,
)


@dataclasses.dataclass
class WitnessOutcome:
    """The verdict of one lower-bound construction on one algorithm."""

    theorem: str
    algorithm: str
    decided: bool
    violation: Optional[str]
    detail: str
    k: Optional[int] = None
    executions: Dict[str, ExecutionResult] = dataclasses.field(
        default_factory=dict
    )
    indistinguishability_ok: Optional[bool] = None

    @property
    def exhibits_violation(self) -> bool:
        return self.violation is not None

    def __str__(self) -> str:
        verdict = (
            f"VIOLATION({self.violation})"
            if self.violation
            else ("decided-late-or-never" if not self.decided else "ok")
        )
        return f"[{self.theorem}] {self.algorithm}: {verdict} — {self.detail}"


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _run(
    environment: Environment,
    algorithm: ConsensusAlgorithm,
    assignment: Dict[ProcessId, Value],
    fixed_rounds: int,
    extra_rounds: int,
) -> ExecutionResult:
    """Run a fixed prefix, then continue until decision or the horizon."""
    environment.reset()
    processes = algorithm.instantiate(assignment)
    engine = ExecutionEngine(environment, processes, assignment)
    if fixed_rounds:
        engine.run(fixed_rounds, until_all_decided=False)
    if extra_rounds:
        engine.run(extra_rounds, until_all_decided=True)
    return engine.result()


def _distinct_decisions(result: ExecutionResult) -> Tuple:
    return tuple(
        sorted(set(result.decided_values().values()), key=repr)
    )


def _disjoint_groups(
    n: int, base: int = 0
) -> Tuple[Tuple[ProcessId, ...], Tuple[ProcessId, ...]]:
    group_a = tuple(range(base, base + n))
    group_b = tuple(range(base + n, base + 2 * n))
    return group_a, group_b


# ----------------------------------------------------------------------
# Theorems 4 and 5: impossibility without (useful) collision detection
# ----------------------------------------------------------------------
def _partition_impossibility(
    theorem: str,
    detector_factory,
    algorithm: ConsensusAlgorithm,
    value_a: Value,
    value_b: Value,
    n: int,
    horizon: int,
) -> WitnessOutcome:
    """The Theorem 4/5 skeleton, parameterised by the detector.

    Build unanimous executions α (all ``value_a``) and β (all ``value_b``)
    with perfect delivery and a round-1 leader; if both decide by some
    round ``k``, compose them behind a ``k``-round partition that the
    detector class cannot expose, and exhibit the agreement violation.

    ``detector_factory(k)`` builds the detector; it receives ``None`` for
    the unanimous runs and the partition length ``k`` for the composed
    run (some classes, like eventual completeness, position their
    stabilization round past the partition — the lower-bound designer's
    prerogative).
    """
    if value_a == value_b:
        raise ConfigurationError("the two initial values must differ")
    group_a, group_b = _disjoint_groups(n)

    def unanimous(group: Tuple[ProcessId, ...], value: Value) -> ExecutionResult:
        env = Environment(
            indices=group,
            detector=detector_factory(None),
            contention=LeaderElectionService(1, leader=min(group)),
            loss=ReliableDelivery(),
            crash=NoCrashes(),
        )
        return _run(env, algorithm, {i: value for i in group}, 0, horizon)

    alpha = unanimous(group_a, value_a)
    beta = unanimous(group_b, value_b)
    if not (alpha.all_correct_decided() and beta.all_correct_decided()):
        return WitnessOutcome(
            theorem=theorem,
            algorithm=algorithm.name,
            decided=False,
            violation=None,
            detail=(
                f"candidate never decided within {horizon} rounds under "
                "perfect delivery — consistent with the impossibility "
                "(a correct algorithm cannot decide here)"
            ),
            executions={"alpha": alpha, "beta": beta},
        )

    k = max(alpha.last_decision_round(), beta.last_decision_round())
    gamma_env = Environment(
        indices=tuple(sorted(group_a + group_b)),
        detector=detector_factory(k),
        contention=ScriptedContentionManager(
            script={
                r: [min(group_a), min(group_b)] for r in range(1, k + 1)
            },
            default="leader",
            stabilization_round=k + 1,
        ),
        loss=PartitionLoss([group_a, group_b], until_round=k),
        crash=NoCrashes(),
    )
    assignment = {i: value_a for i in group_a}
    assignment.update({i: value_b for i in group_b})
    gamma = _run(gamma_env, algorithm, assignment, k, horizon)

    indist = all(
        indistinguishable(gamma, alpha, pid, k) for pid in group_a
    ) and all(
        indistinguishable(gamma, beta, pid, k) for pid in group_b
    )
    decided = _distinct_decisions(gamma)
    violation = "agreement" if len(decided) > 1 else None
    detail = (
        f"both unanimous runs decided by round {k}; composed execution "
        f"decided {decided} "
        + ("— agreement violated" if violation else "— no violation found")
    )
    return WitnessOutcome(
        theorem=theorem,
        algorithm=algorithm.name,
        decided=True,
        violation=violation,
        detail=detail,
        k=k,
        executions={"alpha": alpha, "beta": beta, "gamma": gamma},
        indistinguishability_ok=indist,
    )


def theorem4_witness(
    algorithm: ConsensusAlgorithm,
    value_a: Value,
    value_b: Value,
    n: int = 3,
    horizon: int = 60,
) -> WitnessOutcome:
    """Theorem 4: no (E(NoCD, LS), V, ECF)-consensus algorithm exists.

    The NoCD detector answers ``±`` always, so a partition is
    indistinguishable from ordinary noise.
    """
    return _partition_impossibility(
        "theorem-4 (NoCD)", lambda _k: no_cd_detector(), algorithm,
        value_a, value_b, n, horizon,
    )


def theorem5_witness(
    algorithm: ConsensusAlgorithm,
    value_a: Value,
    value_b: Value,
    n: int = 3,
    horizon: int = 60,
) -> WitnessOutcome:
    """Theorem 5: no (E(NoACC, LS), V, ECF)-consensus algorithm exists.

    Follows from Theorem 4 via Lemma 1 (NoCD ⊆ NoACC); the witness uses a
    complete, never-accurate detector whose free choices are all ``±`` —
    i.e. the trivial NoCD member of NoACC.
    """

    def noacc_detector(_k) -> CollisionDetector:
        return ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.NEVER, policy=NoisyPolicy()
        )

    return _partition_impossibility(
        "theorem-5 (NoACC)", noacc_detector, algorithm, value_a, value_b,
        n, horizon,
    )


def eventual_completeness_witness(
    algorithm: ConsensusAlgorithm,
    value_a: Value,
    value_b: Value,
    n: int = 3,
    horizon: int = 60,
) -> WitnessOutcome:
    """The conclusion's remark, executable: consensus is impossible when
    the detector "might satisfy no completeness properties for an a
    priori unknown number of rounds".

    Before ``r_comp`` the detector may stay silent through arbitrary
    loss, so the adversary simply positions ``r_comp`` past the
    partition: the composed execution looks clean to both groups, exactly
    as in Theorem 4 (with silence instead of noise).
    """
    from ..detectors.eventual import eventually_complete_detector
    from ..detectors.policy import SilentPolicy

    def detector(k) -> CollisionDetector:
        r_comp = (k + 1) if k is not None else 1
        return eventually_complete_detector(r_comp, policy=SilentPolicy())

    return _partition_impossibility(
        "eventual-completeness (conclusion)", detector, algorithm,
        value_a, value_b, n, horizon,
    )


# ----------------------------------------------------------------------
# Theorems 6 and 7: Ω(log) round complexity with half-AC
# ----------------------------------------------------------------------
def theorem6_witness(
    algorithm: ConsensusAlgorithm,
    values: Sequence[Value],
    n: int = 2,
    k: Optional[int] = None,
    extra_rounds: int = 200,
) -> WitnessOutcome:
    """Theorem 6: anonymous consensus with half-AC needs Ω(lg|V|) rounds.

    Finds two values whose alpha executions share a broadcast-count prefix
    (Lemma 21), transports one to a disjoint index set (Lemma 20 /
    Corollary 2 — valid because the algorithm is anonymous), composes them
    (Lemma 23), and reports what the composition proves about the
    candidate.
    """
    if not algorithm.is_anonymous:
        raise ConfigurationError("theorem 6 applies to anonymous algorithms")
    if k is None:
        k = lemma21_bound(len(values))
    group_a, group_b = _disjoint_groups(n)

    pair = lemma21_find_pair(algorithm, group_a, values, k)
    if pair is None:
        return WitnessOutcome(
            theorem="theorem-6 (half-AC, anonymous)",
            algorithm=algorithm.name,
            decided=False,
            violation=None,
            detail=(
                f"no two of {len(values)} alpha executions share a "
                f"{k}-round broadcast prefix (k above the pigeonhole bound)"
            ),
            k=k,
        )
    value_a, value_b, alpha_a, _ = pair
    # Corollary 2: re-run the second value on a disjoint index set; the
    # broadcast count sequence is preserved by anonymity.
    alpha_b = alpha_execution(algorithm, group_b, value_b, k)
    composed = compose_alpha_executions(
        algorithm, alpha_a, alpha_b, value_a, value_b, k,
        extra_rounds=extra_rounds,
    )
    return _complexity_outcome(
        "theorem-6 (half-AC, anonymous)", algorithm, composed
    )


def theorem7_witness(
    algorithm: ConsensusAlgorithm,
    values: Sequence[Value],
    id_space: Sequence[ProcessId],
    n: int = 2,
    k: Optional[int] = None,
    extra_rounds: int = 200,
) -> WitnessOutcome:
    """Theorem 7: non-anonymous consensus with half-AC needs
    Ω(lg(|V||I| / (n|V| + |I|))) rounds.

    Lemma 22's search ranges over disjoint index sets *and* values, so no
    anonymity transport is needed.
    """
    if k is None:
        k = lemma22_bound(len(values), len(id_space), n)
    pair = lemma22_find_pair(algorithm, id_space, n, values, k)
    if pair is None:
        return WitnessOutcome(
            theorem="theorem-7 (half-AC, non-anonymous)",
            algorithm=algorithm.name,
            decided=False,
            violation=None,
            detail=(
                f"no colliding (index set, value) pair at prefix length {k}"
            ),
            k=k,
        )
    group_a, value_a, group_b, value_b, alpha_a, alpha_b = pair
    composed = compose_alpha_executions(
        algorithm, alpha_a, alpha_b, value_a, value_b, k,
        extra_rounds=extra_rounds,
    )
    return _complexity_outcome(
        "theorem-7 (half-AC, non-anonymous)", algorithm, composed
    )


def _complexity_outcome(
    theorem: str,
    algorithm: ConsensusAlgorithm,
    composed: ComposedExecution,
) -> WitnessOutcome:
    """Interpret a Lemma 23 composition as a round-complexity verdict."""
    k = composed.k
    decided_by_k_a = all(
        composed.alpha_a.decision_rounds.get(pid) is not None
        and composed.alpha_a.decision_rounds[pid] <= k
        for pid in composed.group_a
    )
    decided_by_k_b = all(
        composed.alpha_b.decision_rounds.get(pid) is not None
        and composed.alpha_b.decision_rounds[pid] <= k
        for pid in composed.group_b
    )
    decided_fast = decided_by_k_a and decided_by_k_b
    decided = _distinct_decisions(composed.gamma)
    violation = (
        "agreement" if decided_fast and len(decided) > 1 else None
    )
    if decided_fast:
        detail = (
            f"candidate decided within k={k} rounds in both alpha "
            f"executions; composed execution decided {decided}"
            + (" — agreement violated" if violation else "")
        )
    else:
        detail = (
            f"candidate did not decide within k={k} rounds after CST — "
            "the Ω(log) bound is respected"
        )
    return WitnessOutcome(
        theorem=theorem,
        algorithm=algorithm.name,
        decided=decided_fast,
        violation=violation,
        detail=detail,
        k=k,
        executions={
            "alpha_a": composed.alpha_a,
            "alpha_b": composed.alpha_b,
            "gamma": composed.gamma,
        },
        indistinguishability_ok=composed.indistinguishability_holds,
    )


# ----------------------------------------------------------------------
# Theorem 8: eventual accuracy is useless without ECF
# ----------------------------------------------------------------------
def theorem8_witness(
    algorithm: ConsensusAlgorithm,
    value_a: Value,
    value_b: Value,
    n: int = 3,
    horizon: int = 120,
) -> WitnessOutcome:
    """Theorem 8: no (E(OAC, LS), V, NOCF)-consensus algorithm exists.

    Run the permanently-partitioned gamma execution first (a legal OAC
    environment, since its detector is complete and accurate).  If the
    candidate decides some ``x`` by round ``k``, peel the two groups into
    standalone executions whose eventually-accurate detectors replay
    gamma's collision advice as pre-``r_acc`` false positives — one of the
    two then decides against a unanimous initial value.
    """
    if value_a == value_b:
        raise ConfigurationError("the two initial values must differ")
    group_a, group_b = _disjoint_groups(n)
    all_indices = tuple(sorted(group_a + group_b))

    gamma_env = Environment(
        indices=all_indices,
        detector=ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
        ),
        contention=LeaderElectionService(1, leader=min(group_a)),
        loss=PartitionLoss([group_a, group_b], until_round=None),
        crash=NoCrashes(),
    )
    assignment = {i: value_a for i in group_a}
    assignment.update({i: value_b for i in group_b})
    gamma = _run(gamma_env, algorithm, assignment, 0, horizon)

    if not gamma.all_correct_decided():
        return WitnessOutcome(
            theorem="theorem-8 (OAC, no ECF)",
            algorithm=algorithm.name,
            decided=False,
            violation=None,
            detail=(
                f"candidate never decided within {horizon} rounds of the "
                "partitioned execution — consistent with the impossibility"
            ),
            executions={"gamma": gamma},
        )

    decided = _distinct_decisions(gamma)
    if len(decided) > 1:
        # The partition alone already broke agreement; no peeling needed.
        return WitnessOutcome(
            theorem="theorem-8 (OAC, no ECF)",
            algorithm=algorithm.name,
            decided=True,
            violation="agreement",
            detail=f"partitioned execution decided {decided}",
            k=gamma.last_decision_round(),
            executions={"gamma": gamma},
        )

    k = gamma.last_decision_round()
    (x,) = decided

    def replay_detector(group: Tuple[ProcessId, ...]) -> CollisionDetector:
        def advice(
            round_index: int, pid: ProcessId, c: int, t: int
        ) -> CollisionAdvice:
            if round_index <= k:
                return gamma.records[round_index - 1].cd_advice[pid]
            return (
                CollisionAdvice.COLLISION
                if t < c
                else CollisionAdvice.NULL
            )

        return ParametricCollisionDetector(
            Completeness.FULL,
            AccuracyMode.EVENTUAL,
            r_acc=k + 1,
            policy=CallbackPolicy(advice),
        )

    alpha_env = Environment(
        indices=group_a,
        detector=replay_detector(group_a),
        contention=LeaderElectionService(1, leader=min(group_a)),
        loss=ReliableDelivery(),
        crash=NoCrashes(),
    )
    alpha = _run(
        alpha_env, algorithm, {i: value_a for i in group_a}, k, horizon
    )
    beta_env = Environment(
        indices=group_b,
        detector=replay_detector(group_b),
        contention=ScriptedContentionManager(
            script={r: [] for r in range(1, k + 1)},
            default="leader",
            stabilization_round=k + 1,
        ),
        loss=ReliableDelivery(),
        crash=NoCrashes(),
    )
    beta = _run(
        beta_env, algorithm, {i: value_b for i in group_b}, k, horizon
    )

    indist = all(
        indistinguishable(alpha, gamma, pid, k) for pid in group_a
    ) and all(
        indistinguishable(beta, gamma, pid, k) for pid in group_b
    )
    # Uniform validity breaks in whichever unanimous run adopted the other
    # group's value.
    if x == value_a:
        violated_in, initial = "beta", value_b
    else:
        violated_in, initial = "alpha", value_a
    detail = (
        f"partitioned execution decided {x!r} by round {k}; the unanimous "
        f"{violated_in} execution (all initial values {initial!r}) decides "
        f"{x!r} too — uniform validity violated"
    )
    return WitnessOutcome(
        theorem="theorem-8 (OAC, no ECF)",
        algorithm=algorithm.name,
        decided=True,
        violation="uniform-validity",
        detail=detail,
        k=k,
        executions={"gamma": gamma, "alpha": alpha, "beta": beta},
        indistinguishability_ok=indist,
    )


# ----------------------------------------------------------------------
# Theorem 9: Ω(lg|V|) with accuracy but no ECF
# ----------------------------------------------------------------------
def theorem9_witness(
    algorithm: ConsensusAlgorithm,
    values: Sequence[Value],
    n: int = 2,
    k: Optional[int] = None,
    extra_rounds: int = 0,
) -> WitnessOutcome:
    """Theorem 9: anonymous consensus with AC but no CM and no ECF needs
    Ω(lg|V|) rounds.

    Beta executions are one-bit-per-round channels; the pigeonhole over
    binary broadcast sequences finds two values indistinguishable through
    ``k = lg|V| - 1`` rounds, and the silent composition (all messages
    lost, perfect detection) is automatically legal.
    """
    if not algorithm.is_anonymous:
        raise ConfigurationError("theorem 9 applies to anonymous algorithms")
    if k is None:
        k = theorem9_bound(len(values))
    group_a, group_b = _disjoint_groups(n)

    pair = theorem9_find_pair(algorithm, group_a, values, k)
    if pair is None:
        return WitnessOutcome(
            theorem="theorem-9 (AC, no ECF)",
            algorithm=algorithm.name,
            decided=False,
            violation=None,
            detail=(
                f"no two of {len(values)} beta executions share a "
                f"{k}-round binary broadcast sequence"
            ),
            k=k,
        )
    value_a, value_b, beta_a, _ = pair
    beta_b = beta_execution(algorithm, group_b, value_b, k)
    if binary_broadcast_sequence(beta_a, k) != binary_broadcast_sequence(
        beta_b, k
    ):
        raise ConfigurationError(
            "anonymity transport failed: the algorithm is not anonymous"
        )

    gamma_env = Environment(
        indices=tuple(sorted(group_a + group_b)),
        detector=ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
        ),
        contention=NoContentionManager(),
        loss=SilenceLoss(),
        crash=NoCrashes(),
    )
    assignment = {i: value_a for i in group_a}
    assignment.update({i: value_b for i in group_b})
    gamma = _run(gamma_env, algorithm, assignment, k, extra_rounds)

    indist = all(
        indistinguishable(gamma, beta_a, pid, k) for pid in group_a
    ) and all(
        indistinguishable(gamma, beta_b, pid, k) for pid in group_b
    )
    decided_by_k_a = all(
        beta_a.decision_rounds.get(pid) is not None
        and beta_a.decision_rounds[pid] <= k
        for pid in group_a
    )
    decided_by_k_b = all(
        beta_b.decision_rounds.get(pid) is not None
        and beta_b.decision_rounds[pid] <= k
        for pid in group_b
    )
    decided_fast = decided_by_k_a and decided_by_k_b
    decided = _distinct_decisions(gamma)
    violation = "agreement" if decided_fast and len(decided) > 1 else None
    detail = (
        f"candidate decided within k={k} silent rounds; composition "
        f"decided {decided}" + (" — agreement violated" if violation else "")
        if decided_fast
        else f"candidate did not decide within k={k} rounds — bound respected"
    )
    return WitnessOutcome(
        theorem="theorem-9 (AC, no ECF)",
        algorithm=algorithm.name,
        decided=decided_fast,
        violation=violation,
        detail=detail,
        k=k,
        executions={"beta_a": beta_a, "beta_b": beta_b, "gamma": gamma},
        indistinguishability_ok=indist,
    )
