"""Alpha and beta executions (Definition 24 and Theorem 9's symmetric runs).

An *alpha execution* ``α_P(v)`` is the canonical well-behaved run the lower
bounds replay: every process starts with the same value ``v``, the leader
(``min(P)``) is the only CM-active process from round 1, delivery follows
the rule "single broadcaster → everyone receives; several broadcasters →
each keeps only its own message", the detector is complete and accurate,
and nobody crashes.  Under those rules the detector's advice is fully
determined, so the execution of a deterministic algorithm is unique —
which is exactly what makes the counting arguments of Lemmas 21/22 work.

A *beta execution* (Theorem 9's proof sketch) is the fully-symmetric run:
no contention manager (everyone ``active``), *all* cross-process messages
lost, perfect detection.  Anonymous processes behave identically, so each
round either everyone broadcasts or nobody does — a one-bit-per-round
channel.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..adversary.crash import NoCrashes
from ..adversary.loss import AlphaLoss, SilenceLoss
from ..contention.services import (
    LeaderElectionService,
    NoContentionManager,
    all_passive_schedule,
)
from ..core.algorithm import ConsensusAlgorithm
from ..core.environment import Environment
from ..core.errors import ConfigurationError
from ..core.execution import ExecutionEngine
from ..core.records import ExecutionResult, RecordPolicy
from ..core.types import ProcessId, Value
from ..detectors.detector import ParametricCollisionDetector
from ..detectors.policy import BenignPolicy
from ..detectors.properties import AccuracyMode, Completeness


def alpha_environment(indices: Sequence[ProcessId]) -> Environment:
    """The environment of ``α_P(v)``: AC detector, MAXLS fixed to min(P).

    Definition 24 fixes the maximal-AC detector to the behaviour forced by
    the delivery rule, and the maximal leader-election service to "min(P)
    active from round 1".  Both are realised concretely here.
    """
    if not indices:
        raise ConfigurationError("alpha executions need a non-empty P")
    return Environment(
        indices=tuple(indices),
        detector=ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
        ),
        contention=LeaderElectionService(
            stabilization_round=1, leader=min(indices)
        ),
        loss=AlphaLoss(),
        crash=NoCrashes(),
    )


def alpha_execution(
    algorithm: ConsensusAlgorithm,
    indices: Sequence[ProcessId],
    value: Value,
    rounds: int,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> ExecutionResult:
    """Run ``α_P(v)`` for exactly ``rounds`` rounds.

    The prefix is always completed in full (no early stop on decision):
    the counting lemmas compare fixed-length broadcast-count prefixes.

    ``record_policy`` may be relaxed to ``SUMMARY`` by callers that only
    consult broadcast-count sequences (Definition 22) — the pigeonhole
    searches — dropping FULL retention for large sweeps.  Replays that
    feed :func:`~repro.lowerbounds.compose.compose_alpha_executions`
    need ``FULL`` (indistinguishability checks read per-round views).
    """
    environment = alpha_environment(indices)
    environment.reset()
    assignment = {i: value for i in environment.indices}
    processes = algorithm.instantiate(assignment)
    engine = ExecutionEngine(
        environment, processes, assignment, record_policy=record_policy
    )
    return engine.run(rounds, until_all_decided=False)


def beta_execution(
    algorithm: ConsensusAlgorithm,
    indices: Sequence[ProcessId],
    value: Value,
    rounds: int,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> ExecutionResult:
    """Theorem 9's symmetric run: NoCM, total loss, perfect detection."""
    if not indices:
        raise ConfigurationError("beta executions need a non-empty P")
    environment = Environment(
        indices=tuple(indices),
        detector=ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
        ),
        contention=NoContentionManager(),
        loss=SilenceLoss(),
        crash=NoCrashes(),
    )
    environment.reset()
    assignment = {i: value for i in environment.indices}
    processes = algorithm.instantiate(assignment)
    engine = ExecutionEngine(
        environment, processes, assignment, record_policy=record_policy
    )
    return engine.run(rounds, until_all_decided=False)


def raw_broadcast_counts(
    result: ExecutionResult, through_round: int
) -> Tuple[int, ...]:
    """Per-round raw broadcaster counts under ``FULL`` *or* ``SUMMARY``.

    The per-round ``c`` is all the counting arguments ever read, and both
    retention policies keep it; only ``NONE`` (which keeps nothing per
    round) is rejected, via the error raised by the records accessor.
    """
    if result.record_policy is RecordPolicy.SUMMARY:
        return tuple(
            s.broadcast_count for s in result.summaries[:through_round]
        )
    return tuple(
        rec.broadcast_count for rec in result.records[:through_round]
    )


def binary_broadcast_sequence(
    result: ExecutionResult, through_round: int
) -> Tuple[int, ...]:
    """Theorem 9's binary broadcast sequence: 1 iff anyone broadcast."""
    return tuple(
        0 if c == 0 else 1
        for c in raw_broadcast_counts(result, through_round)
    )


def group_broadcast_counts(
    result: ExecutionResult, through_round: int
) -> Tuple[int, ...]:
    """Per-round raw broadcaster counts (used by the composition scripts)."""
    return raw_broadcast_counts(result, through_round)
