"""A physical-layer substitute for the paper's mote hardware.

The paper's model is motivated by empirical radio behaviour (Section 1.1):
capture effects produce non-uniform receive sets, ambient interference
loses 20-50% of messages, carrier sensing can detect collisions, and
drifting clocks are kept in step by reference broadcasts.  We have no
motes, so this package simulates the closest synthetic equivalents and
*measures* which formal detector class the simulated hardware achieves —
reproducing the shape of the paper's "zero completeness in ~100% of
rounds, majority completeness in over 90%" claim (Section 1.3).

* :mod:`repro.substrate.radio` — an SINR/capture single-hop channel.
* :mod:`repro.substrate.carrier_sense` — an energy-based collision
  detector plus per-round achieved-class measurement.
* :mod:`repro.substrate.clock` — drifting clocks with reference-broadcast
  resynchronisation, validating the synchronous-round abstraction.
* :mod:`repro.substrate.device` — glue: run a paper algorithm over the
  simulated physical layer end to end.
"""

from .carrier_sense import (
    CarrierSenseDetector,
    DetectorQualityStats,
    measure_detector_quality,
)
from .clock import ClockModel, DriftingClock, ReferenceBroadcastSync
from .device import Testbed, TestbedResult
from .multihop import FloodResult, MultihopLayer, MultihopNetwork, flood
from .radio import RadioChannel, RadioConfig, TransmissionOutcome

__all__ = [
    "RadioChannel",
    "RadioConfig",
    "TransmissionOutcome",
    "CarrierSenseDetector",
    "DetectorQualityStats",
    "measure_detector_quality",
    "ClockModel",
    "DriftingClock",
    "ReferenceBroadcastSync",
    "Testbed",
    "TestbedResult",
    "MultihopNetwork",
    "MultihopLayer",
    "FloodResult",
    "flood",
]
