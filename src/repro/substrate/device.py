"""End-to-end testbed: paper algorithms over the simulated physical layer.

The formal experiments drive algorithms with *formal* detectors and
adversaries; this module closes the loop the paper's Section 1.3 sketches
by running the same algorithm code over the physical substitute stack:

* message loss comes from the capture-effect radio,
* collision advice comes from carrier sensing over the same round's
  channel energy,
* contention management comes from the practical randomized backoff.

Because the hardware detector only *approximately* achieves a formal
class, the safety-critical question is whether the algorithms' agreement
and validity survive — which is precisely the paper's safety/liveness
separation: safety must not depend on the CM or on round-perfect
detection quality, and the resilience experiment (E10) verifies that.
"""

from __future__ import annotations

import dataclasses
from typing import AbstractSet, Dict, Mapping, Optional, Sequence

from ..adversary.crash import CrashAdversary, NoCrashes
from ..adversary.loss import (
    ArrayRoundLosses,
    LossAdversary,
    ResolvedRoundLosses,
)
from ..contention.backoff import BackoffContentionManager
from ..core.algorithm import ConsensusAlgorithm
from ..core.arrays import numpy_or_none
from ..core.environment import Environment
from ..core.execution import ExecutionEngine
from ..core.records import ExecutionResult
from ..core.types import CollisionAdvice, ProcessId, Value
from ..detectors.detector import CollisionDetector
from .carrier_sense import CarrierSenseDetector
from .radio import (
    RadioChannel,
    RadioConfig,
    TransmissionOutcome,
    outcome_drop_arrays,
)

_np = numpy_or_none()


class PhysicalLayer(LossAdversary, CollisionDetector):
    """One object playing both engine roles, backed by one channel.

    The engine asks the loss adversary and the collision detector
    separately, but physically both answers come from the *same* round of
    radio arbitration.  The layer resolves each round once (memoised by
    round index) and serves both interfaces from the cached outcome.
    """

    def __init__(
        self,
        indices: Sequence[ProcessId],
        config: Optional[RadioConfig] = None,
        seed: int = 0,
    ) -> None:
        self.indices = tuple(indices)
        self.channel = RadioChannel(config, seed=seed)
        self.sensor = CarrierSenseDetector(self.channel.config)
        self._round_cache: Dict[int, Dict[ProcessId, TransmissionOutcome]] = {}

    # -- shared round resolution ---------------------------------------
    def _outcomes(
        self, round_index: int, senders: Sequence[ProcessId]
    ) -> Dict[ProcessId, TransmissionOutcome]:
        if round_index not in self._round_cache:
            self._round_cache[round_index] = self.channel.resolve_round(
                senders, self.indices
            )
        return self._round_cache[round_index]

    # -- LossAdversary interface ----------------------------------------
    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        outcomes = self._outcomes(round_index, senders)
        decoded = set(outcomes[receiver].decoded)
        return {s for s in senders if s != receiver and s not in decoded}

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Mapping[ProcessId, AbstractSet[ProcessId]]:
        # One radio arbitration per round (already memoised for the
        # detector's benefit); the per-receiver drop sets fall out of the
        # cached outcomes without re-scanning state per call.  Each set is
        # a subset of senders minus the receiver, so the mapping is
        # normalized.  With numpy present the round resolves as an
        # :class:`ArrayRoundLosses` — counts and dropped pairs derived
        # from the already-arbitrated outcomes (no randomness consumed),
        # sets only on demand — so testbed rounds ride the engine's
        # array kernel; the pure-python branch below stays the
        # byte-identical reference.
        outcomes = self._outcomes(round_index, senders)
        if _np is not None:
            receivers_t = (
                receivers if type(receivers) is tuple else tuple(receivers)
            )
            drop_counts, pairs = outcome_drop_arrays(
                _np, outcomes, senders, receivers_t
            )

            def materialise() -> Dict[ProcessId, AbstractSet[ProcessId]]:
                out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
                for pid in receivers_t:
                    decoded = set(outcomes[pid].decoded)
                    out[pid] = {
                        s for s in senders if s != pid and s not in decoded
                    }
                return out

            return ArrayRoundLosses(
                receivers_t, drop_counts, materialise, pairs=pairs
            )
        out = ResolvedRoundLosses()
        for pid in receivers:
            decoded = set(outcomes[pid].decoded)
            out[pid] = {
                s for s in senders if s != pid and s not in decoded
            }
        return out

    # -- CollisionDetector interface --------------------------------------
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        outcomes = self._round_cache.get(round_index)
        if outcomes is None:
            # No broadcast resolution happened (nobody sent): silent round.
            return {
                pid: CollisionAdvice.NULL for pid in received_counts
            }
        return {
            pid: self.sensor.advise_from_outcome(outcomes[pid])
            for pid in received_counts
        }

    def reset(self) -> None:
        self.channel.reset()
        self._round_cache = {}

    @property
    def r_cf(self) -> Optional[int]:
        # The radio promises nothing formally; liveness is empirical.
        return None


@dataclasses.dataclass
class TestbedResult:
    """Outcome of one testbed run."""

    # Not a pytest class, despite the collectable name.
    __test__ = False

    execution: ExecutionResult
    backoff_stabilized_at: Optional[int]
    leader: Optional[ProcessId]


class Testbed:
    """Run a consensus algorithm over the physical substitute stack."""

    # Not a pytest class, despite the collectable name.
    __test__ = False

    def __init__(
        self,
        n: int,
        config: Optional[RadioConfig] = None,
        seed: int = 0,
        crash: Optional[CrashAdversary] = None,
    ) -> None:
        self.indices = tuple(range(n))
        self.config = config or RadioConfig()
        self.seed = seed
        self.crash = crash or NoCrashes()

    def run(
        self,
        algorithm: ConsensusAlgorithm,
        initial_values: Mapping[ProcessId, Value],
        max_rounds: int = 1000,
    ) -> TestbedResult:
        """Execute until everyone decides or the horizon expires."""
        layer = PhysicalLayer(self.indices, self.config, seed=self.seed)
        backoff = BackoffContentionManager(seed=self.seed + 1)
        environment = Environment(
            indices=self.indices,
            detector=layer,
            contention=backoff,
            loss=layer,
            crash=self.crash,
        )
        environment.reset()
        processes = algorithm.instantiate(dict(initial_values))
        engine = ExecutionEngine(environment, processes, dict(initial_values))
        execution = engine.run(max_rounds, until_all_decided=True)
        # A process can broadcast its confirming solo message and crash
        # *after send* in the same round: the backoff locks it in, and
        # only the next advise() would heal.  If the run ended first,
        # don't report a crashed process as the standing leader.
        leader = backoff.leader
        stabilized_at = backoff.stabilized_at
        if leader is not None and execution.crash_rounds.get(leader) is not None:
            leader = None
            stabilized_at = None
        return TestbedResult(
            execution=execution,
            backoff_stabilized_at=stabilized_at,
            leader=leader,
        )
