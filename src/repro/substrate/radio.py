"""A single-hop radio channel with capture effect and interference.

The channel implements the physics the paper's communication model
abstracts away (Section 1.1):

* every sender has a transmit power; every (sender, receiver) pair draws
  independent log-normal fading per round, so different receivers see
  different signal strengths from the *same* transmission;
* a receiver decodes greedily by descending signal strength: the strongest
  frame is decoded if its SINR (signal over remaining interference plus
  noise) clears ``capture_threshold`` — the capture effect [71]; decoding
  then continues against the residual interference, so a receiver can
  occasionally decode more than one frame per round (long rounds relative
  to packet time);
* external interference bursts (a neighbouring clique transmitting) raise
  the noise floor for whole rounds, losing messages even when only a
  single local process broadcasts — the reason the paper makes collision
  freedom only *eventual*.

The outcome of a round is, per receiver, the decoded subset and the total
in-band energy — the latter is what carrier-sense collision detection
(see :mod:`repro.substrate.carrier_sense`) gets to look at.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.types import Message, ProcessId


@dataclasses.dataclass(frozen=True)
class RadioConfig:
    """Channel parameters.

    Defaults are tuned so that contention produces the 20-50% loss band
    the paper's empirical citations report, while a lone broadcaster
    (absent interference bursts) is received with near certainty.
    """

    tx_power: float = 1.0
    #: Log-normal fading sigma (in nats) applied per (sender, receiver, round).
    fading_sigma: float = 0.6
    #: Thermal noise floor.
    noise_floor: float = 0.01
    #: Minimum SINR to decode a frame.  The default puts pairwise
    #: contention at ~7% loss and three-way contention at ~58%, bracketing
    #: the 20-50% band the paper's empirical citations report, while a
    #: lone broadcaster is received with near certainty.
    capture_threshold: float = 0.9
    #: Fraction of a decoded frame's energy that survives interference
    #: cancellation and keeps jamming weaker frames (1.0 = pure capture of
    #: a single frame, 0.0 = ideal successive cancellation).
    cancellation_residual: float = 0.35
    #: Probability that a round suffers an external interference burst.
    burst_probability: float = 0.0
    #: Noise added during a burst (sensed by carrier sensing too).
    burst_noise: float = 5.0
    #: Energy-detection threshold used by carrier sensing.
    energy_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_power <= 0 or self.noise_floor <= 0:
            raise ConfigurationError("powers must be positive")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ConfigurationError("burst_probability must be in [0,1]")


@dataclasses.dataclass(frozen=True)
class TransmissionOutcome:
    """What one receiver experienced in one round."""

    decoded: Tuple[ProcessId, ...]
    total_energy: float
    burst: bool

    @property
    def decoded_count(self) -> int:
        return len(self.decoded)


def outcome_drop_arrays(np_mod, outcomes, senders, receivers):
    """Array-kernel ingredients from one round of resolved outcomes.

    Builds the (receiver x sender) drop mask implied by the decoded
    tuples — every frame starts dropped, then each receiver's own column
    (self-delivery is the engine's job) and its decoded frames are
    cleared — and reduces it to the per-receiver drop counts plus a lazy
    dropped-pair producer, the exact ingredients of
    :class:`~repro.adversary.loss.ArrayRoundLosses`.  Consumes no
    randomness: the channel arbitration already happened when
    ``outcomes`` was resolved, so every view over it is free.
    """
    n_senders = len(senders)
    n_receivers = len(receivers)
    spos = {s: j for j, s in enumerate(senders)}
    drop = np_mod.ones((n_receivers, n_senders), dtype=bool)
    for k, receiver in enumerate(receivers):
        j = spos.get(receiver)
        if j is not None:
            drop[k, j] = False
        for s in outcomes[receiver].decoded:
            drop[k, spos[s]] = False
    drop_counts = drop.sum(axis=1, dtype=np_mod.int64)

    def pairs():
        return np_mod.nonzero(drop)

    return drop_counts, pairs


class RadioChannel:
    """The seeded physical channel.

    :meth:`resolve_round` takes the set of local senders and returns, per
    receiver, a :class:`TransmissionOutcome`.  Self-reception is handled
    by the caller (the model makes it unconditional); the channel only
    arbitrates *other* senders' frames.
    """

    def __init__(self, config: Optional[RadioConfig] = None, seed: int = 0) -> None:
        self.config = config or RadioConfig()
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def resolve_round(
        self,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ) -> Dict[ProcessId, TransmissionOutcome]:
        """Resolve one round of simultaneous broadcasts."""
        cfg = self.config
        burst = self._rng.random() < cfg.burst_probability
        noise = cfg.noise_floor + (cfg.burst_noise if burst else 0.0)
        outcomes: Dict[ProcessId, TransmissionOutcome] = {}
        for receiver in receivers:
            others = [s for s in senders if s != receiver]
            signals: List[Tuple[float, ProcessId]] = []
            for sender in others:
                fading = math.exp(
                    self._rng.gauss(0.0, cfg.fading_sigma)
                )
                signals.append((cfg.tx_power * fading, sender))
            signals.sort(reverse=True)
            signal_energy = sum(power for power, _ in signals)
            decoded: List[ProcessId] = []
            undecoded = signal_energy
            cancelled = 0.0
            for power, sender in signals:
                interference = (
                    (undecoded - power)
                    + cfg.cancellation_residual * cancelled
                    + noise
                )
                if power / interference >= cfg.capture_threshold:
                    decoded.append(sender)
                    undecoded -= power
                    cancelled += power
                else:
                    # Signals are sorted: once the strongest remaining frame
                    # fails the SINR test, the weaker ones fail too.
                    break
            # Carrier sensing sees everything in band, bursts included.
            sensed = signal_energy + (cfg.burst_noise if burst else 0.0)
            outcomes[receiver] = TransmissionOutcome(
                decoded=tuple(decoded),
                total_energy=sensed,
                burst=burst,
            )
        return outcomes

    # ------------------------------------------------------------------
    def loss_statistics(
        self,
        n: int,
        broadcasters: int,
        rounds: int,
    ) -> Mapping[str, float]:
        """Measure per-receiver message-loss fractions over many rounds.

        Used by the calibration experiment (E9) to confirm the channel
        sits in the paper's 20-50% loss band under contention.
        """
        if broadcasters < 1 or broadcasters > n:
            raise ConfigurationError("broadcasters must be in 1..n")
        indices = list(range(n))
        lost = 0
        possible = 0
        delivered_single = 0
        single_rounds = 0
        for _ in range(rounds):
            senders = indices[:broadcasters]
            outcomes = self.resolve_round(senders, indices)
            for receiver in indices:
                others = [s for s in senders if s != receiver]
                if not others:
                    continue
                possible += len(others)
                lost += len(others) - outcomes[receiver].decoded_count
            if broadcasters == 1:
                single_rounds += 1
                receiver_hits = sum(
                    1
                    for receiver in indices
                    if receiver != senders[0]
                    and outcomes[receiver].decoded_count == 1
                )
                delivered_single += receiver_hits
        stats = {
            "loss_fraction": lost / possible if possible else 0.0,
        }
        if broadcasters == 1 and single_rounds:
            stats["single_broadcaster_delivery"] = delivered_single / (
                single_rounds * (n - 1)
            )
        return stats
