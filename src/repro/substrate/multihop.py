"""A multihop extension of the model (the conclusion's future work).

The paper's model is single-hop; its conclusion announces the plan to
"extend our formal model to describe a multihop network" and revisit
problems like reliable broadcast there.  This module provides that
extension as a substrate:

* :class:`MultihopNetwork` — an undirected connectivity graph (built on
  :mod:`networkx`); processes hear only graph neighbours;
* :class:`MultihopLayer` — one object serving both engine roles, like
  the physical layer: as a loss adversary it drops every message from a
  non-neighbour (plus an optional inner adversary within the
  neighbourhood); as a collision detector it applies the completeness /
  accuracy obligations *per neighbourhood* — ``c_i`` is the number of
  broadcasting neighbours of ``i`` (self included), which is the natural
  multihop reading of Definition 6;
* :func:`flood` — the broadcast problem (Bar-Yehuda et al. [7], the
  paper's flagship related problem): a source floods a message; we
  measure rounds until full coverage under two relay strategies, showing
  the contention collapse of blind flooding and the recovery via
  randomized backoff — the behaviour that motivates the whole
  total-collision-model critique of Section 1.2.
"""

from __future__ import annotations

import dataclasses
import random
from typing import AbstractSet, Dict, List, Mapping, Optional, Sequence, Set

import networkx as nx

from ..adversary.loss import ArrayRoundLosses, LossAdversary
from ..core.arrays import numpy_or_none
from ..core.errors import ConfigurationError
from ..core.types import CollisionAdvice, ProcessId
from ..detectors.detector import CollisionDetector
from ..detectors.policy import BenignPolicy, DetectorPolicy
from ..detectors.properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    must_report_collision,
    must_report_null,
)

_np = numpy_or_none()


class MultihopNetwork:
    """An undirected connectivity graph over process indices."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("the network needs at least one node")
        if not nx.is_connected(graph):
            raise ConfigurationError("the network must be connected")
        self.graph = graph

    # -- canned topologies ------------------------------------------------
    @classmethod
    def line(cls, n: int) -> "MultihopNetwork":
        """A path of ``n`` nodes: diameter ``n - 1``."""
        return cls(nx.path_graph(n))

    @classmethod
    def grid(cls, width: int, height: int) -> "MultihopNetwork":
        """A ``width x height`` grid, relabelled to integer indices."""
        grid = nx.grid_2d_graph(width, height)
        return cls(nx.convert_node_labels_to_integers(grid))

    @classmethod
    def clique_chain(cls, cliques: int, size: int) -> "MultihopNetwork":
        """A chain of single-hop cliques bridged by shared nodes."""
        graph = nx.Graph()
        for c in range(cliques):
            members = range(c * (size - 1), c * (size - 1) + size)
            for a in members:
                for b in members:
                    if a < b:
                        graph.add_edge(a, b)
        return cls(graph)

    @classmethod
    def ring(
        cls, n: int, successors: int = 1, fingers: bool = True
    ) -> "MultihopNetwork":
        """A Chord-style ring overlay: successor lists plus finger tables.

        Every node ``i`` is linked to its ``successors`` clockwise
        neighbours ``i+1 .. i+s (mod n)`` — the successor list that keeps
        the ring connected under churn — and, when ``fingers`` is true,
        to the power-of-two fingers ``i + 2^k (mod n)`` for ``2^k < n``,
        which cut the diameter from ``O(n)`` to ``O(log n)``.  The graph
        is undirected, so predecessor links come for free.
        """
        if n < 2:
            raise ConfigurationError("a ring needs at least two nodes")
        if not 1 <= successors < n:
            raise ConfigurationError(
                f"successors must be in [1, n); got {successors} for n={n}"
            )
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for s in range(1, successors + 1):
                graph.add_edge(i, (i + s) % n)
            if fingers:
                span = 2
                while span < n:
                    graph.add_edge(i, (i + span) % n)
                    span *= 2
        return cls(graph)

    @classmethod
    def random_geometric(
        cls, n: int, radius: float, seed: int = 0
    ) -> "MultihopNetwork":
        """A random geometric graph, regenerated until connected."""
        for attempt in range(100):
            graph = nx.random_geometric_graph(
                n, radius, seed=seed + attempt
            )
            if nx.is_connected(graph):
                return cls(graph)
        raise ConfigurationError(
            f"no connected geometric graph at n={n}, radius={radius}"
        )

    # -- queries -----------------------------------------------------------
    @property
    def indices(self) -> Sequence[ProcessId]:
        return tuple(sorted(self.graph.nodes))

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def diameter(self) -> int:
        return nx.diameter(self.graph)

    def neighbors(self, pid: ProcessId) -> Set[ProcessId]:
        return set(self.graph.neighbors(pid))

    def closed_neighborhood(self, pid: ProcessId) -> Set[ProcessId]:
        return self.neighbors(pid) | {pid}


class MultihopLayer(LossAdversary, CollisionDetector):
    """Topology-aware loss plus neighbourhood-local collision detection.

    The same object must be installed as both the environment's loss
    adversary and its detector: the detector needs this round's sender
    set (recorded by the loss path) to compute per-neighbourhood counts.
    """

    def __init__(
        self,
        network: MultihopNetwork,
        inner: Optional[LossAdversary] = None,
        completeness: Completeness = Completeness.FULL,
        accuracy: AccuracyMode = AccuracyMode.ALWAYS,
        r_acc: Optional[int] = None,
        policy: Optional[DetectorPolicy] = None,
    ) -> None:
        self.network = network
        self.inner = inner
        self.completeness = completeness
        self.accuracy = accuracy
        self.r_acc = r_acc
        self.policy = policy or BenignPolicy()
        self._senders_by_round: Dict[int, Sequence[ProcessId]] = {}
        self._losses_by_round: Dict[int, Dict[ProcessId, Set[ProcessId]]] = {}
        # Closed-neighbourhood incidence matrix + index positions, built
        # lazily per index tuple for the array advice path.
        self._nbhd_cache: Optional[tuple] = None

    # -- LossAdversary ------------------------------------------------------
    def losses(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receiver: ProcessId,
    ) -> AbstractSet[ProcessId]:
        self._senders_by_round[round_index] = list(senders)
        neighborhood = self.network.closed_neighborhood(receiver)
        lost = {s for s in senders if s not in neighborhood}
        local_senders = [s for s in senders if s in neighborhood]
        if self.inner is not None:
            lost |= {
                s
                for s in self.inner.losses(
                    round_index, local_senders, receiver
                )
                if s != receiver
            }
        self._losses_by_round.setdefault(round_index, {})[receiver] = lost
        return lost

    def losses_for_round(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
    ):
        """Whole-round resolution: one inner delegation per neighbourhood.

        Receivers whose closed neighbourhoods see the *same* local sender
        list share both the cross-neighbourhood drop set (``senders``
        minus the local ones — receiver-independent, so one frozenset per
        group) and a single batched call into the inner adversary.  On
        uniform topologies (cliques, dense grids) this collapses the
        per-receiver work of the legacy path to a handful of group-level
        resolutions per round.

        With numpy present the round resolves as an
        :class:`ArrayRoundLosses`: per-receiver drop counts come from the
        group sizes (``|cross|`` plus the inner adversary's own batched
        counts), the drop sets and dropped pairs only on demand.  The
        inner delegations happen *here*, before the representation
        branches, in group order — so the inner adversary's randomness is
        consumed identically whichever representation is served and
        whether or not the engine's kernel consumes it.  Inner drop sets
        must stay within the local sender list (minus the receiver);
        normalized inner mappings guarantee that already.
        """
        self._senders_by_round[round_index] = list(senders)
        network = self.network
        groups: Dict[tuple, List[ProcessId]] = {}
        for pid in receivers:
            neighborhood = network.closed_neighborhood(pid)
            local = tuple(s for s in senders if s in neighborhood)
            groups.setdefault(local, []).append(pid)
        inner = self.inner
        inner_maps: Dict[tuple, Mapping] = {}
        if inner is not None:
            for local, members in groups.items():
                inner_maps[local] = inner.losses_for_round(
                    round_index, list(local), members
                )
        senders_fs = frozenset(senders)
        if _np is not None:
            return self._losses_round_array(
                round_index, senders, receivers, groups, inner_maps,
                senders_fs,
            )
        out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
        by_round = self._losses_by_round.setdefault(round_index, {})
        for local, members in groups.items():
            cross = senders_fs - frozenset(local)
            inner_map = inner_maps.get(local)
            for pid in members:
                inner_lost = inner_map[pid] if inner_map else None
                if inner_lost:
                    lost: AbstractSet[ProcessId] = set(cross)
                    lost.update(s for s in inner_lost if s != pid)
                else:
                    lost = cross
                out[pid] = lost
                by_round[pid] = set(lost)
        return out

    def _losses_round_array(
        self,
        round_index: int,
        senders: Sequence[ProcessId],
        receivers: Sequence[ProcessId],
        groups: Dict[tuple, List[ProcessId]],
        inner_maps: Dict[tuple, Mapping],
        senders_fs: frozenset,
    ) -> ArrayRoundLosses:
        """Array representation of one resolved round (numpy present).

        Counts are assembled per group: the receiver-independent
        ``|cross|`` plus the inner adversary's drop count — read straight
        off the inner :class:`ArrayRoundLosses` when it produced one, so
        an inner ``IIDLoss`` contributes counts without ever
        materialising a python set.  Sets (and the round bookkeeping
        they feed) and dropped pairs resolve lazily, sharing one memo.
        """
        receivers_t = (
            receivers if type(receivers) is tuple else tuple(receivers)
        )
        rpos = {pid: k for k, pid in enumerate(receivers_t)}
        n_senders = len(senders)
        drop_counts = _np.zeros(len(receivers_t), dtype=_np.int64)
        for local, members in groups.items():
            cross_count = n_senders - len(local)
            inner_map = inner_maps.get(local)
            if inner_map is None:
                for pid in members:
                    drop_counts[rpos[pid]] = cross_count
            elif (type(inner_map) is ArrayRoundLosses
                    and list(inner_map.receivers) == members):
                inner_counts = inner_map.drop_counts.tolist()
                for i, pid in enumerate(members):
                    drop_counts[rpos[pid]] = cross_count + inner_counts[i]
            else:
                for pid in members:
                    inner_lost = inner_map[pid] if inner_map else None
                    extra = (
                        sum(1 for s in inner_lost if s != pid)
                        if inner_lost else 0
                    )
                    drop_counts[rpos[pid]] = cross_count + extra
        spos = {s: j for j, s in enumerate(senders)}
        sets_cell: List[Dict[ProcessId, AbstractSet[ProcessId]]] = []

        def materialise() -> Dict[ProcessId, AbstractSet[ProcessId]]:
            # Shared by the mapping interface and ``pairs`` below —
            # whichever view resolves first builds the sets (and the
            # per-round bookkeeping) exactly once.
            if not sets_cell:
                by_round = self._losses_by_round.setdefault(round_index, {})
                out: Dict[ProcessId, AbstractSet[ProcessId]] = {}
                for local, members in groups.items():
                    cross = senders_fs - frozenset(local)
                    inner_map = inner_maps.get(local)
                    for pid in members:
                        inner_lost = inner_map[pid] if inner_map else None
                        if inner_lost:
                            lost: AbstractSet[ProcessId] = set(cross)
                            lost.update(s for s in inner_lost if s != pid)
                        else:
                            lost = cross
                        out[pid] = lost
                        by_round[pid] = set(lost)
                sets_cell.append(out)
            return sets_cell[0]

        def pairs():
            sets = materialise()
            rows: List[int] = []
            cols: List[int] = []
            for k, pid in enumerate(receivers_t):
                for s in sets[pid]:
                    rows.append(k)
                    cols.append(spos[s])
            return (
                _np.asarray(rows, dtype=_np.intp),
                _np.asarray(cols, dtype=_np.intp),
            )

        return ArrayRoundLosses(
            receivers_t, drop_counts, materialise, pairs=pairs
        )

    # -- CollisionDetector ----------------------------------------------------
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        senders = self._senders_by_round.get(round_index, [])
        advice: Dict[ProcessId, CollisionAdvice] = {}
        for pid, t in received_counts.items():
            neighborhood = self.network.closed_neighborhood(pid)
            c_local = sum(1 for s in senders if s in neighborhood)
            if must_report_collision(self.completeness, c_local, t):
                advice[pid] = CollisionAdvice.COLLISION
            elif must_report_null(
                self.accuracy, round_index, self.r_acc, c_local, t
            ):
                advice[pid] = CollisionAdvice.NULL
            else:
                advice[pid] = self.policy.free_choice(
                    round_index, pid, c_local, t
                )
        return advice

    def _neighborhood_arrays(self, indices: Sequence[ProcessId]):
        """Closed-neighbourhood incidence matrix + positions for ``indices``.

        Cached per index tuple (the engine passes the same tuple every
        round), so the graph is scanned once per execution.
        """
        cached = self._nbhd_cache
        if cached is not None and cached[0] is indices:
            return cached[1], cached[2]
        pos = {pid: k for k, pid in enumerate(indices)}
        mat = _np.zeros((len(indices), len(indices)), dtype=_np.int64)
        graph = self.network.graph
        for k, pid in enumerate(indices):
            mat[k, k] = 1
            for s in graph.neighbors(pid):
                j = pos.get(s)
                if j is not None:
                    mat[k, j] = 1
        self._nbhd_cache = (indices, mat, pos)
        return mat, pos

    def advise_array(
        self,
        round_index: int,
        broadcasters: int,
        counts,
        indices: Sequence[ProcessId],
    ) -> List[CollisionAdvice]:
        """Vectorised neighbourhood-local advice for the array kernel.

        The per-receiver local broadcaster counts ``c_i`` are one
        incidence-matrix product; the Properties 4-9 obligations then
        resolve elementwise with *per-element* ``c`` (unlike the
        single-hop detectors, every receiver has its own broadcaster
        count).  Free choices go to the policy per unconstrained process
        in index order — exactly the calls dict :meth:`advise` makes —
        so seeded policies consume their streams identically on both
        paths.
        """
        if _np is None:  # pragma: no cover - engine gates on numpy first
            return super().advise_array(
                round_index, broadcasters, counts, indices
            )
        senders = self._senders_by_round.get(round_index, [])
        mat, pos = self._neighborhood_arrays(indices)
        sender_mask = _np.zeros(len(indices), dtype=_np.int64)
        for s in senders:
            k = pos.get(s)
            if k is not None:
                sender_mask[k] = 1
        c_local = mat @ sender_mask
        over = counts > c_local
        if over.any():
            k = int(over.argmax())
            # Mirror must_report_collision's own validation, first
            # offender in index order like the dict path.
            raise ValueError(
                f"invalid transmission data c={int(c_local[k])}, "
                f"t={int(counts[k])}"
            )
        level = self.completeness
        if level is Completeness.FULL:
            obliged = counts < c_local
        elif level is Completeness.MAJORITY:
            obliged = (c_local > 0) & (2 * counts <= c_local)
        elif level is Completeness.HALF:
            obliged = (c_local > 0) & (2 * counts < c_local)
        elif level is Completeness.ZERO:
            obliged = (c_local > 0) & (counts == 0)
        else:
            obliged = _np.zeros(len(indices), dtype=bool)
        if accuracy_active(self.accuracy, round_index, self.r_acc):
            null_mask = (counts == c_local) & ~obliged
        else:
            null_mask = _np.zeros(len(indices), dtype=bool)
        free_choice = self.policy.free_choice
        ob_list = obliged.tolist()
        null_list = null_mask.tolist()
        c_list = c_local.tolist()
        t_list = counts.tolist()
        out: List[CollisionAdvice] = []
        append = out.append
        for k, pid in enumerate(indices):
            if ob_list[k]:
                append(CollisionAdvice.COLLISION)
            elif null_list[k]:
                append(CollisionAdvice.NULL)
            else:
                append(free_choice(round_index, pid, c_list[k], t_list[k]))
        return out

    def reset(self) -> None:
        self._senders_by_round = {}
        self._losses_by_round = {}
        self._nbhd_cache = None
        if self.inner is not None:
            self.inner.reset()
        self.policy.reset()


# ----------------------------------------------------------------------
# The broadcast problem over the multihop substrate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FloodResult:
    """Outcome of one flood: coverage trajectory and completion round."""

    covered_by_round: List[int]
    completed_round: Optional[int]
    n: int
    diameter: int
    informed_round: Dict[ProcessId, int] = dataclasses.field(
        default_factory=dict
    )

    @property
    def completed(self) -> bool:
        return self.completed_round is not None

    # -- hops / stabilization metrics ----------------------------------
    @property
    def max_hops(self) -> Optional[int]:
        """Rounds until the last node was informed (``None`` if partial).

        On a contention-free flood this equals the source's graph
        eccentricity; the excess over it is pure contention delay.
        """
        if not self.completed:
            return None
        return max(self.informed_round.values())

    @property
    def mean_hops(self) -> Optional[float]:
        """Mean informing round over all reached nodes but the source."""
        reached = [r for r in self.informed_round.values() if r > 0]
        if not reached:
            return None
        return sum(reached) / len(reached)

    @property
    def stabilization(self) -> Optional[float]:
        """Completion round over diameter — the flood's stretch factor.

        ``1.0`` means the flood advanced one hop per round, the best any
        relay strategy can do; larger values quantify how much the
        channel and the relay policy slowed the frontier down.
        """
        if not self.completed or self.diameter == 0:
            return None
        return self.completed_round / self.diameter


def flood(
    network: MultihopNetwork,
    source: ProcessId,
    strategy: str = "backoff",
    channel: str = "capture",
    relay_probability: float = 0.35,
    capture_limit: int = 1,
    max_rounds: int = 400,
    seed: int = 0,
) -> FloodResult:
    """Flood a message from ``source`` and measure coverage per round.

    Per round, every informed node decides whether to relay:

    * ``blind``   — always relay (the naive flood: heavy contention);
    * ``backoff`` — relay with ``relay_probability`` (simple randomized
      backoff, the standard contention fix).

    Reception semantics per receiver, given its ``talking`` neighbours:

    * ``channel='total'``   — the total collision model of Section 1.2:
      decode iff *exactly one* neighbour talks; two or more jam each
      other completely.  Blind flooding deadlocks on any topology where
      frontier nodes permanently hear several informed relays (e.g. the
      grid's diagonal frontier) — the behaviour that motivates backoff;
    * ``channel='capture'`` — the paper's realistic alternative: up to
      ``capture_limit`` of the talking neighbours are decoded, chosen at
      random per receiver (arbitrary-subset loss, localised).
    """
    if strategy not in ("blind", "backoff"):
        raise ConfigurationError("strategy must be 'blind' or 'backoff'")
    if channel not in ("capture", "total"):
        raise ConfigurationError("channel must be 'capture' or 'total'")
    if source not in set(network.indices):
        raise ConfigurationError(f"source {source} is not in the network")
    rng = random.Random(seed)
    informed: Set[ProcessId] = {source}
    informed_round: Dict[ProcessId, int] = {source: 0}
    trajectory: List[int] = []
    completed: Optional[int] = None
    for round_index in range(1, max_rounds + 1):
        if strategy == "blind":
            relays = set(informed)
        else:
            relays = {
                pid for pid in informed
                if rng.random() < relay_probability
            }
            if not relays and informed != set(network.indices):
                relays = {rng.choice(sorted(informed))}
        newly: Set[ProcessId] = set()
        for pid in network.indices:
            if pid in informed:
                continue
            talking = [r for r in relays if r in network.neighbors(pid)]
            if not talking:
                continue
            if channel == "total":
                if len(talking) == 1:
                    newly.add(pid)
            else:
                decoded = rng.sample(
                    talking, min(capture_limit, len(talking))
                )
                if decoded:
                    newly.add(pid)
        informed |= newly
        for pid in newly:
            informed_round[pid] = round_index
        trajectory.append(len(informed))
        if len(informed) == network.n:
            completed = round_index
            break
    return FloodResult(
        covered_by_round=trajectory,
        completed_round=completed,
        n=network.n,
        diameter=network.diameter,
        informed_round=informed_round,
    )
