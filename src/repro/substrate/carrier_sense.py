"""Carrier-sense collision detection over the simulated radio.

The paper argues (Section 1.3, citing Deng et al. [18]) that zero-complete
collision detection is just physical carrier sensing: compare the energy
on the channel against what you managed to decode.  This module implements
that detector and *measures* which formal class it achieves per round —
reproducing the claim shape "zero completeness in 100% of rounds, majority
completeness in over 90%".

The detector reports a collision when the round's undecoded energy — the
total in-band energy minus the energy accounted for by decoded frames —
exceeds the configured threshold.  A lone decoded frame leaves no residual
energy, so accuracy violations come only from fading fluctuations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..core.types import CollisionAdvice, ProcessId
from ..detectors.properties import Completeness, must_report_collision
from .radio import RadioChannel, RadioConfig, TransmissionOutcome


class CarrierSenseDetector:
    """Energy-based receiver-side collision detection.

    ``advise_from_outcome`` turns one receiver's physical round outcome
    into binary advice: ``±`` iff the undecoded energy exceeds the
    threshold.  (Decoded frames contribute roughly ``tx_power`` each; we
    subtract that estimate rather than the true per-frame energy, because
    a real radio only knows its calibrated expectation.)
    """

    def __init__(self, config: Optional[RadioConfig] = None) -> None:
        self.config = config or RadioConfig()

    def advise_from_outcome(
        self, outcome: TransmissionOutcome
    ) -> CollisionAdvice:
        expected_decoded_energy = (
            outcome.decoded_count * self.config.tx_power
        )
        residual = outcome.total_energy - expected_decoded_energy
        if residual > self.config.energy_threshold:
            return CollisionAdvice.COLLISION
        return CollisionAdvice.NULL


@dataclasses.dataclass
class DetectorQualityStats:
    """Per-class achievement rates of the simulated hardware detector.

    Each rate is the fraction of (receiver, round) observations in which
    the advice satisfied the class's obligation — the empirical analogue
    of the formal completeness/accuracy properties.
    """

    rounds: int
    observations: int
    zero_complete_rate: float
    half_complete_rate: float
    majority_complete_rate: float
    full_complete_rate: float
    accuracy_rate: float

    def as_rows(self) -> Sequence[Dict[str, object]]:
        """Tabular form for the experiment harness."""
        return [
            {"property": "0-completeness", "rate": self.zero_complete_rate},
            {"property": "half-completeness", "rate": self.half_complete_rate},
            {"property": "maj-completeness", "rate": self.majority_complete_rate},
            {"property": "completeness", "rate": self.full_complete_rate},
            {"property": "accuracy", "rate": self.accuracy_rate},
        ]


def measure_detector_quality(
    n: int,
    broadcasters: int,
    rounds: int,
    config: Optional[RadioConfig] = None,
    seed: int = 0,
) -> DetectorQualityStats:
    """Run the radio + carrier-sense stack and grade it per round.

    For each (receiver, round) pair we know the ground truth ``(c, t)``
    and the advice, so we can score every completeness property: the
    property is *satisfied* when either its obligation did not fire or the
    advice was ``±``.  Accuracy is satisfied when ``t == c`` implied
    ``null``.
    """
    cfg = config or RadioConfig()
    channel = RadioChannel(cfg, seed=seed)
    detector = CarrierSenseDetector(cfg)
    indices = list(range(n))
    senders = indices[:broadcasters]

    satisfied = {
        Completeness.ZERO: 0,
        Completeness.HALF: 0,
        Completeness.MAJORITY: 0,
        Completeness.FULL: 0,
    }
    accurate = 0
    observations = 0

    for _ in range(rounds):
        outcomes = channel.resolve_round(senders, indices)
        for receiver in indices:
            outcome = outcomes[receiver]
            # Ground truth: receivers count their own frame (the model's
            # unconditional self-delivery).
            own = 1 if receiver in senders else 0
            c = len(senders)
            t = outcome.decoded_count + own
            advice = detector.advise_from_outcome(outcome)
            reported = advice is CollisionAdvice.COLLISION
            observations += 1
            for level in satisfied:
                obliged = must_report_collision(level, c, t)
                if not obliged or reported:
                    satisfied[level] += 1
            if t == c:
                if not reported:
                    accurate += 1
            else:
                accurate += 1  # accuracy only constrains loss-free rounds

    def rate(level: Completeness) -> float:
        return satisfied[level] / observations if observations else 1.0

    return DetectorQualityStats(
        rounds=rounds,
        observations=observations,
        zero_complete_rate=rate(Completeness.ZERO),
        half_complete_rate=rate(Completeness.HALF),
        majority_complete_rate=rate(Completeness.MAJORITY),
        full_complete_rate=rate(Completeness.FULL),
        accuracy_rate=accurate / observations if observations else 1.0,
    )
