"""Drifting clocks and reference-broadcast synchronisation.

The paper assumes synchronised rounds and cites RBS [25] as the practical
mechanism ("clock synchronization within 3.68 ± 2.57 µs ... over 4 hops").
This module validates the synchronous-round abstraction for our testbed:
each device's oscillator runs at a slightly wrong rate, a reference
broadcast every ``resync_interval`` rounds lets devices re-zero their
offsets (receivers time-stamp the same physical event, so their mutual
skew collapses to the time-stamping jitter), and we measure the maximum
pairwise skew between resyncs.  As long as that skew stays below the
guard band of a round, the round abstraction the formal model assumes is
sound.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.types import ProcessId


@dataclasses.dataclass(frozen=True)
class ClockModel:
    """Oscillator parameters.

    ``drift_ppm`` bounds the per-device rate error (drawn uniformly in
    ``±drift_ppm``); ``jitter`` is the RBS time-stamping noise, in the
    same time unit as ``round_length``.
    """

    round_length: float = 1.0
    drift_ppm: float = 100.0
    jitter: float = 1e-4

    def __post_init__(self) -> None:
        if self.round_length <= 0:
            raise ConfigurationError("round_length must be positive")
        if self.drift_ppm < 0 or self.jitter < 0:
            raise ConfigurationError("drift and jitter must be >= 0")


class DriftingClock:
    """One device's local clock: true time -> local time."""

    def __init__(self, rate_error: float) -> None:
        #: Multiplicative rate error, e.g. +50e-6 for a fast clock.
        self.rate_error = rate_error
        self.offset = 0.0

    def local_time(self, true_time: float) -> float:
        """The device's reading at physical time ``true_time``."""
        return true_time * (1.0 + self.rate_error) + self.offset

    def resynchronise(self, true_time: float, jitter: float) -> None:
        """Re-zero against a reference broadcast observed at ``true_time``.

        After RBS the device believes the reference event happened at the
        agreed epoch, up to its time-stamping jitter.
        """
        self.offset = -true_time * self.rate_error + jitter


class ReferenceBroadcastSync:
    """Simulate a clique of drifting clocks kept in step by RBS.

    :meth:`max_skew_between_resyncs` reports the worst pairwise
    disagreement, which experiments compare against the round length.
    """

    def __init__(
        self,
        n: int,
        model: Optional[ClockModel] = None,
        resync_interval: int = 100,
        seed: int = 0,
    ) -> None:
        if n < 2:
            raise ConfigurationError("need at least two clocks to skew")
        if resync_interval < 1:
            raise ConfigurationError("resync_interval must be >= 1")
        self.model = model or ClockModel()
        self.resync_interval = resync_interval
        self._rng = random.Random(seed)
        scale = self.model.drift_ppm * 1e-6
        self.clocks: Dict[ProcessId, DriftingClock] = {
            i: DriftingClock(self._rng.uniform(-scale, scale))
            for i in range(n)
        }

    # ------------------------------------------------------------------
    def skew_at(self, true_time: float) -> float:
        """Maximum pairwise clock disagreement at ``true_time``."""
        readings = [
            clock.local_time(true_time) for clock in self.clocks.values()
        ]
        return max(readings) - min(readings)

    def run(self, rounds: int) -> List[float]:
        """Simulate ``rounds`` rounds, resyncing on schedule.

        Returns the per-round skew trace (sampled at each round boundary).
        """
        skews: List[float] = []
        for r in range(1, rounds + 1):
            true_time = r * self.model.round_length
            if r % self.resync_interval == 0:
                for clock in self.clocks.values():
                    clock.resynchronise(
                        true_time,
                        self._rng.gauss(0.0, self.model.jitter),
                    )
            skews.append(self.skew_at(true_time))
        return skews

    def max_skew_between_resyncs(self, rounds: int) -> float:
        """Worst-case skew over a run — the round-abstraction guard band."""
        return max(self.run(rounds))

    def rounds_stay_aligned(self, rounds: int, guard_fraction: float = 0.5) -> bool:
        """True when skew never eats more than ``guard_fraction`` of a round."""
        return self.max_skew_between_resyncs(rounds) <= (
            guard_fraction * self.model.round_length
        )
