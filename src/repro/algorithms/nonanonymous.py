"""The non-anonymous consensus variant of Section 7.3.

When the identifier space ``I`` is smaller than the value space ``V``,
running Algorithm 2 directly over ``V`` is wasteful: electing a *leader*
by running Algorithm 2 over ``I`` (each process's initial value is its own
ID) and then having the leader disseminate its real value costs only
``Θ(lg|I|)`` rounds.  The composite terminates in
``CST + Θ(min{lg|V|, lg|I|})`` rounds, (almost) matching Corollary 3.

Structure, following the paper's informal description:

* ``|V| <= |I|`` — plain Algorithm 2 over ``V``, unmodified.
* ``|V| > |I|`` — rounds are grouped into repeating triples:

  - **phase-1 rounds** (``r ≡ 1 mod 3``) run consecutive instances of
    Algorithm 2 over the ID space.  A new instance's prepare-phase
    broadcasts are suppressed until the current leader is detected dead,
    so re-election cannot begin (let alone finish) while the leader lives;
  - **phase-2 rounds** (``r ≡ 2 mod 3``): the elected leader broadcasts a
    value; everyone else listens.  A silent phase-2 round after an
    election is definitive evidence of leader death (a live leader
    broadcasts every phase-2 round, and zero completeness turns "heard
    nothing, no collision" into "nobody broadcast" — Corollary 1);
  - **phase-3 rounds** (``r ≡ 0 mod 3``): processes that have not yet
    received a leader value broadcast ``veto``; a quiet phase-3 round
    certifies that every live process holds the value, and every holder
    that observes the quiet round decides.

Reproduction notes (documented in DESIGN.md):

1. The paper has non-leaders decide *on first reception* of a phase-2
   value.  That is unsafe if the leader crashes after a partial delivery:
   a later leader would broadcast a different value.  We instead decide on
   the first *quiet phase-3* round, the same negative-acknowledgement
   pattern as Algorithm 1 — a quiet phase 3 proves all live processes hold
   the value, at the cost of at most one extra round triple.
2. Leaders broadcast their *locked* value — the first phase-2 value they
   ever received — falling back to their own initial value.  Combined with
   note 1 this makes re-election value-preserving: if anyone decided ``v``,
   every live process holds ``v``, so every future leader re-broadcasts
   ``v``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.algorithm import ConsensusAlgorithm
from ..core.errors import ConfigurationError
from ..core.multiset import Multiset
from ..core.process import Process
from ..core.types import (
    ACTIVE,
    COLLISION,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    ProcessId,
    Value,
)
from .alg2 import Alg2Process, algorithm_2
from .encoding import BinaryEncoding
from .markers import VETO, VOTE

PHASE1 = "election"
PHASE2 = "dissemination"
PHASE3 = "confirmation"


class _ValueEnvelope:
    """A phase-2 payload: distinguishes leader values from election traffic."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"LeaderValue({self.value!r})"


class LeaderElectProcess(Process):
    """The ``|V| > |I|`` composite: elect-by-ID, then disseminate.

    The phase-1 election machinery is a repeated-cycle Algorithm 2 over
    the ID space, inlined (not delegated to :class:`Alg2Process`) because
    it must never halt and must gate its prepare broadcasts on leader
    liveness.
    """

    def __init__(
        self,
        pid: ProcessId,
        initial_value: Value,
        id_encoding: BinaryEncoding,
    ) -> None:
        super().__init__()
        if pid not in id_encoding:
            raise ConfigurationError(
                f"process id {pid!r} is outside the declared ID space"
            )
        self.pid = pid
        self.initial_value = initial_value
        self.id_encoding = id_encoding

        # Election (phase-1) state: an Algorithm 2 cycle over ID bits.
        self.id_estimate: str = id_encoding.encode(pid)
        self.id_size = id_encoding.width
        self.election_phase = "prepare"
        self.election_decide = True
        self.election_bit = 1

        # Leadership / dissemination state.
        self.leader: Optional[ProcessId] = None
        self.leader_dead = False
        self.locked_value: Optional[Value] = None
        self._phase1_count = 0

    # ------------------------------------------------------------------
    @property
    def round_phase(self) -> str:
        """Which of the three interleaved phases the *next* round is."""
        position = self._round % 3
        return (PHASE1, PHASE2, PHASE3)[position]

    @property
    def is_leader(self) -> bool:
        return self.leader == self.pid

    @property
    def value_to_disseminate(self) -> Value:
        """Locked value when one exists, else this process's own input."""
        return (
            self.locked_value
            if self.locked_value is not None
            else self.initial_value
        )

    # ------------------------------------------------------------------
    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        phase = self.round_phase
        if phase == PHASE1:
            return self._election_message(cm_advice)
        if phase == PHASE2:
            if self.is_leader:
                return _ValueEnvelope(self.value_to_disseminate)
            return None
        # PHASE3: veto while the leader's value is still missing here.
        if (
            self.leader is not None
            and not self.is_leader
            and self.locked_value is None
        ):
            return VETO
        return None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        phase = self.round_phase
        if phase == PHASE1:
            self._election_transition(received, cd_advice)
        elif phase == PHASE2:
            self._dissemination_transition(received, cd_advice)
        else:
            self._confirmation_transition(received, cd_advice)

    # ------------------------------------------------------------------
    # Phase 1: repeated Algorithm 2 cycles over the ID space.
    # ------------------------------------------------------------------
    def _election_message(
        self, cm_advice: ContentionAdvice
    ) -> Optional[Message]:
        if self.election_phase == "prepare":
            suppressed = self.leader is not None and not self.leader_dead
            if cm_advice is ACTIVE and not suppressed:
                return self.id_estimate
            return None
        if self.election_phase == "propose":
            bit = self.id_estimate[self.election_bit - 1]
            return VOTE if bit == "1" else None
        # accept
        return VETO if not self.election_decide else None

    def _election_transition(
        self, received: Multiset, cd_advice: CollisionAdvice
    ) -> None:
        if self.election_phase == "prepare":
            estimates = {
                m for m in received.support() if isinstance(m, str)
            }
            if cd_advice is not COLLISION and estimates:
                self.id_estimate = min(estimates)
            self.election_decide = True
            self.election_bit = 1
            self.election_phase = "propose"
        elif self.election_phase == "propose":
            heard = len(received) > 0 or cd_advice is COLLISION
            if heard and self.id_estimate[self.election_bit - 1] == "0":
                self.election_decide = False
            self.election_bit += 1
            if self.election_bit > self.id_size:
                self.election_phase = "accept"
        else:  # accept
            if received.is_empty() and cd_advice is not COLLISION:
                self.leader = self.id_encoding.decode(self.id_estimate)
                self.leader_dead = False
                # Start the next instance fresh from this process's own ID.
                self.id_estimate = self.id_encoding.encode(self.pid)
            self.election_phase = "prepare"

    # ------------------------------------------------------------------
    # Phase 2: leader dissemination and death detection.
    # ------------------------------------------------------------------
    def _dissemination_transition(
        self, received: Multiset, cd_advice: CollisionAdvice
    ) -> None:
        envelopes = [
            m for m in received if isinstance(m, _ValueEnvelope)
        ]
        if envelopes and self.locked_value is None:
            # Lock the first leader value ever received (reproduction
            # note 2): this is what we would re-broadcast as leader.
            self.locked_value = envelopes[0].value
        if (
            self.leader is not None
            and not self.is_leader
            and self.locked_value is None
            and received.is_empty()
            and cd_advice is not COLLISION
        ):
            # Silence with a zero-complete detector means nobody broadcast,
            # and a live leader always broadcasts in phase 2: it is dead.
            self.leader_dead = True

    # ------------------------------------------------------------------
    # Phase 3: negative acknowledgements and the decision rule.
    # ------------------------------------------------------------------
    def _confirmation_transition(
        self, received: Multiset, cd_advice: CollisionAdvice
    ) -> None:
        quiet = received.is_empty() and cd_advice is not COLLISION
        if quiet and self.locked_value is not None:
            # A quiet phase 3 proves every live process holds the value
            # (anyone missing it would have vetoed, and zero completeness
            # makes a missed veto visible as a collision).
            self.decide(self.locked_value)
            self.halt()


def non_anonymous_algorithm(
    values: Iterable[Value], id_space: Sequence[ProcessId]
) -> ConsensusAlgorithm:
    """The Section 7.3 algorithm for value set ``V`` and ID space ``I``.

    Chooses the cheaper machinery: plain Algorithm 2 over ``V`` when
    ``|V| <= |I|``, leader-election-then-disseminate otherwise.
    """
    value_list = list(values)
    ids = list(id_space)
    if not ids:
        raise ConfigurationError("the ID space must be non-empty")
    if len(set(ids)) != len(ids):
        raise ConfigurationError("the ID space contains duplicates")
    if len(value_list) <= len(ids):
        inner = algorithm_2(value_list)
        return ConsensusAlgorithm.indexed(
            lambda pid, v: inner.spawn(pid, v),
            name="non-anonymous(alg2-on-values)",
        )
    id_encoding = BinaryEncoding(ids)
    return ConsensusAlgorithm.indexed(
        lambda pid, v: LeaderElectProcess(pid, v, id_encoding),
        name="non-anonymous(leader-elect)",
    )


def termination_bound(
    cst: int, value_count: int, id_count: int
) -> int:
    """``CST + Θ(min{lg|V|, lg|I|})`` with explicit constants.

    For the Algorithm 2 branch this is Theorem 2's bound.  For the
    leader-elect branch: the election is an Algorithm 2 run over ``I``
    whose rounds are diluted 3x by the phase interleaving, plus one full
    dissemination/confirmation triple.
    """
    if value_count <= id_count:
        width = BinaryEncoding(range(value_count)).width
        return cst + 2 * (width + 1)
    width = BinaryEncoding(range(id_count)).width
    election_rounds = 3 * 2 * (width + 2)
    return cst + election_rounds + 6
