"""Binary value encodings (the paper's ``V^{0,1}``, Section 7 conventions).

Algorithm 2 spells estimates out bit by bit, so every value in ``V`` must
map to a unique binary string of width ``⌈lg |V|⌉``.  The encoding orders
``V`` canonically (sorted by ``repr`` for mixed types, natural order when
possible) so every anonymous process derives the *same* encoding from the
same ``V`` — no out-of-band agreement needed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.types import Value


def canonical_order(values: Iterable[Value]) -> List[Value]:
    """A deterministic total order on ``V`` all processes can compute.

    Natural ordering when the values are mutually comparable, ``repr``
    ordering otherwise.
    """
    vals = list(values)
    try:
        return sorted(vals)
    except TypeError:
        return sorted(vals, key=repr)


def bit_width(size: int) -> int:
    """``⌈lg size⌉``, with a floor of 1 so every value has at least one bit."""
    if size < 1:
        raise ConfigurationError("value set must be non-empty")
    return max(1, math.ceil(math.log2(size))) if size > 1 else 1


class BinaryEncoding:
    """A bijection ``V <-> {0,1}^w`` with ``w = ⌈lg |V|⌉`` (Section 7).

    Bit strings are Python strings over ``'0'``/``'1'``; bit 1 is the most
    significant, matching the paper's ``estimate[b]`` indexing
    (``1 <= b <= ⌈lg|V|⌉``).
    """

    def __init__(self, values: Iterable[Value]) -> None:
        ordered = canonical_order(values)
        if not ordered:
            raise ConfigurationError("value set must be non-empty")
        if len(set(map(repr, ordered))) != len(ordered):
            raise ConfigurationError("value set contains duplicates")
        self._values: Tuple[Value, ...] = tuple(ordered)
        self._width = bit_width(len(ordered))
        self._encode: Dict[Value, str] = {}
        self._decode: Dict[str, Value] = {}
        for rank, value in enumerate(self._values):
            bits = format(rank, f"0{self._width}b")
            self._encode[value] = bits
            self._decode[bits] = value

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """``⌈lg |V|⌉`` — the number of propose-phase rounds Algorithm 2
        spends per cycle."""
        return self._width

    @property
    def values(self) -> Tuple[Value, ...]:
        """The canonically ordered value set."""
        return self._values

    def encode(self, value: Value) -> str:
        """``V -> {0,1}^w``; raises for values outside ``V``."""
        try:
            return self._encode[value]
        except KeyError:
            raise ConfigurationError(f"value {value!r} not in V") from None

    def decode(self, bits: str) -> Value:
        """``{0,1}^w -> V``; raises for strings that encode nothing."""
        try:
            return self._decode[bits]
        except KeyError:
            raise ConfigurationError(f"bit string {bits!r} encodes no value")

    def bit(self, bits: str, b: int) -> int:
        """The paper's ``estimate[b]`` — 1-based, most significant first."""
        if not 1 <= b <= self._width:
            raise ConfigurationError(
                f"bit index {b} out of range 1..{self._width}"
            )
        return int(bits[b - 1])

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Value) -> bool:
        return value in self._encode

    def __repr__(self) -> str:
        return f"BinaryEncoding(|V|={len(self._values)}, width={self._width})"
