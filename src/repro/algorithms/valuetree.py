"""The balanced binary search tree over ``V`` used by Algorithm 3 (§7.4).

Algorithm 3 navigates a balanced BST whose nodes carry the values of ``V``;
each search iteration votes on (value at current node, left subtree, right
subtree).  All anonymous processes must build the *same* tree from the same
``V``, so construction is canonical: sort ``V``, recurse on the midpoint.

``parent`` of the root is the root itself, making the paper's "ascend to
the parent" move total (ascending from the root is a harmless no-op — it
can only occur transiently after crashes).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.types import Value
from .encoding import canonical_order


@dataclasses.dataclass
class TreeNode:
    """One node: its value plus the value sets of its two subtrees.

    ``left_values`` / ``right_values`` answer the pseudocode's membership
    tests ``estimate ∈ left[curr]`` in O(1).
    """

    value: Value
    left_values: FrozenSet[Value]
    right_values: FrozenSet[Value]
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    parent: Optional["TreeNode"] = None
    depth: int = 0

    def __repr__(self) -> str:
        return f"TreeNode({self.value!r}, depth={self.depth})"


class ValueTree:
    """A canonical balanced BST over a value set."""

    def __init__(self, values: Iterable[Value]) -> None:
        ordered = canonical_order(values)
        if not ordered:
            raise ConfigurationError("value set must be non-empty")
        if len(set(map(repr, ordered))) != len(ordered):
            raise ConfigurationError("value set contains duplicates")
        self._values: Tuple[Value, ...] = tuple(ordered)
        self.root = self._build(list(ordered), depth=0)
        self.root.parent = self.root  # ascending from the root is a no-op

    def _build(self, vals: List[Value], depth: int) -> TreeNode:
        mid = len(vals) // 2
        node = TreeNode(
            value=vals[mid],
            left_values=frozenset(vals[:mid]),
            right_values=frozenset(vals[mid + 1:]),
            depth=depth,
        )
        if vals[:mid]:
            node.left = self._build(vals[:mid], depth + 1)
            node.left.parent = node
        if vals[mid + 1:]:
            node.right = self._build(vals[mid + 1:], depth + 1)
            node.right.parent = node
        return node

    # ------------------------------------------------------------------
    @property
    def values(self) -> Tuple[Value, ...]:
        """The canonically ordered value set."""
        return self._values

    @property
    def height(self) -> int:
        """Longest root-to-leaf edge count — at most ``⌈lg|V|⌉``."""
        def depth_of(node: Optional[TreeNode]) -> int:
            if node is None:
                return -1
            return 1 + max(depth_of(node.left), depth_of(node.right))

        return depth_of(self.root)

    def find(self, value: Value) -> TreeNode:
        """Locate ``value``'s node (values are unique, so exactly one)."""
        node: Optional[TreeNode] = self.root
        while node is not None:
            if value == node.value:
                return node
            if value in node.left_values:
                node = node.left
            elif value in node.right_values:
                node = node.right
            else:
                break
        raise ConfigurationError(f"value {value!r} not in the tree")

    def nodes(self) -> List[TreeNode]:
        """All nodes in-order (sorted by value)."""
        out: List[TreeNode] = []

        def walk(node: Optional[TreeNode]) -> None:
            if node is None:
                return
            walk(node.left)
            out.append(node)
            walk(node.right)

        walk(self.root)
        return out

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ValueTree(|V|={len(self._values)}, height={self.height})"
