"""Algorithm 1: anonymous consensus with ECF and a maj-OAC detector (§7.1).

Two alternating phases:

* **proposal** (odd rounds) — every CM-``active`` process broadcasts its
  estimate; a listener that hears no collision and at least one value
  adopts the minimum value received;
* **veto** (even rounds) — any process that saw a collision or more than
  one distinct value in the proposal round broadcasts ``veto``; a process
  decides its estimate iff the veto round is completely quiet (no message,
  no collision) *and* it received exactly one distinct value in the
  proposal round.

Safety rests on majority completeness: no collision notification means a
strict majority of the proposal messages arrived, and majority sets
intersect, so a quiet veto round certifies a unique live estimate
(Lemma 5).  Termination is ``CST + 2`` (Theorem 1).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..core.multiset import Multiset
from ..core.process import Process
from ..core.algorithm import ConsensusAlgorithm
from ..core.types import (
    ACTIVE,
    COLLISION,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    Value,
)
from .encoding import canonical_order
from .markers import VETO

PROPOSAL = "proposal"
VETO_PHASE = "veto"


class Alg1Process(Process):
    """One process of Algorithm 1 (the pseudocode, line for line).

    The pseudocode's per-round locals (``messages_i``, ``CD-advice_i``)
    persist across the phase pair, so the veto round can consult the
    preceding proposal round's observations; we keep them as instance
    attributes written in the proposal transition.
    """

    def __init__(self, initial_value: Value) -> None:
        super().__init__()
        self.estimate: Value = initial_value
        self.phase = PROPOSAL
        # Observations of the most recent proposal round (lines 8-9).
        self._proposal_values: FrozenSet = frozenset()
        self._proposal_cd: CollisionAdvice = CollisionAdvice.NULL

    # ------------------------------------------------------------------
    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        if self.phase == PROPOSAL:
            # Line 6-7: only CM-active processes propose.
            return self.estimate if cm_advice is ACTIVE else None
        # Line 14-15: veto regardless of CM advice.
        saw_trouble = (
            self._proposal_cd is COLLISION or len(self._proposal_values) > 1
        )
        return VETO if saw_trouble else None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        if self.phase == PROPOSAL:
            values = received.support()
            # Lines 10-11: adopt the minimum on a clean, non-empty round.
            if cd_advice is not COLLISION and values:
                self.estimate = canonical_order(values)[0]
            self._proposal_values = values
            self._proposal_cd = cd_advice
            self.phase = VETO_PHASE
        else:
            # Line 18: quiet veto round + unique proposal value => decide.
            if (
                received.is_empty()
                and cd_advice is not COLLISION
                and len(self._proposal_values) == 1
            ):
                self.decide(self.estimate)
                self.halt()
            self.phase = PROPOSAL


def algorithm_1() -> ConsensusAlgorithm:
    """The anonymous (E(maj-OAC, WS), V, ECF)-consensus algorithm."""
    return ConsensusAlgorithm.anonymous(Alg1Process, name="algorithm-1")


def termination_bound(cst: int) -> int:
    """Theorem 1's termination round: ``CST + 2``."""
    return cst + 2
