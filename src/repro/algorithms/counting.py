"""Anonymous counting with a k-wake-up service (Section 4.1's remark).

Section 4.1 observes that "there exist simple problems, such as counting
the number of anonymous processes in the system, that can easily be shown
to be solvable with a k-wake-up service, but impossible with a leader
election service".  This module supplies the solvable half; the
impossibility half is :mod:`repro.lowerbounds.counting`.

Protocol (ECF executions, any zero-complete detector, k-wake-up service):

* a process broadcasts exactly in the **first round of each of its solo
  blocks** — it recognises a block start locally as an ``active`` round
  preceded by a ``passive`` round (or the first round);
* between two consecutive of its own block starts, every *other* live
  process starts exactly one block of its own and (post-stabilization,
  with ECF) its announcement is delivered;
* so at each of its block starts, a process outputs
  ``1 + (announcements heard since its previous block start)``.

Outputs are *stabilizing*, not terminating: before the service and the
channel stabilize the counts can be wrong, and the process has no way to
detect stabilization — but from one full rotation after CST onward every
output equals the number of live processes.  (A terminating count would
contradict the unknown-``n`` model assumption.)

Crashes are handled for free: a crashed process stops announcing, so
counts converge to the number of *live* processes one rotation later.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.algorithm import Algorithm
from ..core.multiset import Multiset
from ..core.process import Process
from ..core.types import (
    ACTIVE,
    CollisionAdvice,
    ContentionAdvice,
    Message,
)
from .markers import Marker

#: The announcement token: content-free, like the paper's vote markers.
ANNOUNCE = Marker("announce")


class CountingProcess(Process):
    """One anonymous process of the counting protocol.

    ``counts`` records every output (one per own block start after the
    first); ``current_count`` is the latest estimate, ``None`` until the
    first full rotation completes.
    """

    def __init__(self) -> None:
        super().__init__()
        self._was_active_last_round = False
        self._announcing = False
        self._heard_since_own_start = 0
        self._seen_own_start = False
        self.counts: List[int] = []

    # ------------------------------------------------------------------
    @property
    def current_count(self) -> Optional[int]:
        """The latest population estimate (live processes incl. self)."""
        return self.counts[-1] if self.counts else None

    # ------------------------------------------------------------------
    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        starting_block = (
            cm_advice is ACTIVE and not self._was_active_last_round
        )
        self._announcing = starting_block
        return ANNOUNCE if starting_block else None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        if self._announcing:
            # Own block start: emit an estimate, then restart the window.
            if self._seen_own_start:
                self.counts.append(1 + self._heard_since_own_start)
            self._seen_own_start = True
            self._heard_since_own_start = 0
            # Own announcement comes back via self-delivery; don't count it.
            others = len(received) - 1
        else:
            others = len(received)
        self._heard_since_own_start += max(0, others)
        self._was_active_last_round = cm_advice is ACTIVE

    @classmethod
    def transition_array(cls, processes, received, cd_advice, cm_advice):
        # The batched form of ``transition``, inlined: counting reads
        # only the receive multiset's size and the CM advice, and never
        # decides, so the whole fleet transitions in one zip loop.
        for proc, ms, cm in zip(processes, received, cm_advice):
            if proc._announcing:
                if proc._seen_own_start:
                    proc.counts.append(1 + proc._heard_since_own_start)
                proc._seen_own_start = True
                proc._heard_since_own_start = 0
                others = len(ms) - 1
            else:
                others = len(ms)
            if others > 0:
                proc._heard_since_own_start += others
            proc._was_active_last_round = cm is ACTIVE
            proc._round += 1
        return None


def counting_algorithm() -> Algorithm:
    """The anonymous counting algorithm (plain, not consensus-valued)."""
    return Algorithm.anonymous(CountingProcess, name="k-wakeup-counting")
