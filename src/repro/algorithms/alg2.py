"""Algorithm 2: anonymous consensus with ECF and a 0-OAC detector (§7.2).

Cycles of ``⌈lg|V|⌉ + 2`` rounds, three phases per cycle:

* **prepare** — CM-``active`` processes broadcast their (binary-encoded)
  estimate; a clean, non-empty reception adopts the minimum;
* **propose** — one round per estimate bit: broadcast iff the bit is 1;
  a process whose bit is 0 that hears anything (message or collision)
  learns the estimates differ and clears its ``decide`` flag;
* **accept** — processes with a cleared flag broadcast ``veto``; a
  completely quiet accept round lets everyone decide.

Safety needs only zero completeness: a quiet round certifies that *nobody*
broadcast (Corollary 1), so a quiet accept round means no process objected,
which (by the propose-phase bit test) forces all estimates equal
(Lemma 10).  Termination is ``CST + 2(⌈lg|V|⌉ + 1)`` (Theorem 2).

The phase schedule is a pure function of the round number, so anonymous
processes stay in lockstep without any coordination.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.algorithm import ConsensusAlgorithm
from ..core.multiset import Multiset
from ..core.process import Process
from ..core.types import (
    ACTIVE,
    COLLISION,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    Value,
)
from .encoding import BinaryEncoding
from .markers import VETO, VOTE

PREPARE = "prepare"
PROPOSE = "propose"
ACCEPT = "accept"


class Alg2Process(Process):
    """One process of Algorithm 2.

    The estimate lives in its binary representation (the paper's
    ``V^{0,1}``); ``bit`` is 1-based with the most significant bit first,
    exactly matching the pseudocode's ``estimate_i[bit_i]``.
    """

    def __init__(self, initial_value: Value, encoding: BinaryEncoding) -> None:
        super().__init__()
        self.encoding = encoding
        self.estimate: str = encoding.encode(initial_value)
        self.size = encoding.width
        self.phase = PREPARE
        self.decide_flag = True
        self.bit = 1

    # ------------------------------------------------------------------
    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        if self.phase == PREPARE:
            # Lines 7-8: only CM-active processes broadcast the estimate.
            return self.estimate if cm_advice is ACTIVE else None
        if self.phase == PROPOSE:
            # Lines 17-18: broadcast iff the current bit is 1.
            return VOTE if self.estimate[self.bit - 1] == "1" else None
        # Lines 27-28: veto iff this cycle found an inconsistency.
        return VETO if not self.decide_flag else None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        if self.phase == PREPARE:
            estimates = {
                m for m in received.support() if isinstance(m, str)
            }
            # Lines 11-12: adopt the (lexicographic) minimum on a clean
            # reception; bit strings share a width, so lexicographic order
            # is the encoding's canonical order.
            if cd_advice is not COLLISION and estimates:
                self.estimate = min(estimates)
            # Lines 13-14: re-arm the cycle.
            self.decide_flag = True
            self.bit = 1
            self.phase = PROPOSE
        elif self.phase == PROPOSE:
            # Lines 21-22: a 0-bit listener that hears anything objects.
            heard_something = (
                len(received) > 0 or cd_advice is COLLISION
            )
            if heard_something and self.estimate[self.bit - 1] == "0":
                self.decide_flag = False
            self.bit += 1
            if self.bit > self.size:
                self.phase = ACCEPT
        else:  # ACCEPT
            # Lines 31-32: a perfectly quiet accept round decides.
            if received.is_empty() and cd_advice is not COLLISION:
                self.decide(self.encoding.decode(self.estimate))
                self.halt()
            self.phase = PREPARE


def algorithm_2(values: Iterable[Value]) -> ConsensusAlgorithm:
    """The anonymous (E(0-OAC, WS), V, ECF)-consensus algorithm over ``V``.

    All processes derive the same binary encoding from ``V``, mirroring the
    paper's assumption that the value set is common knowledge.
    """
    encoding = BinaryEncoding(values)
    return ConsensusAlgorithm.anonymous(
        lambda v: Alg2Process(v, encoding), name="algorithm-2"
    )


def cycle_length(value_count: int) -> int:
    """Rounds per prepare/propose/accept cycle: ``⌈lg|V|⌉ + 2``."""
    return BinaryEncoding(range(value_count)).width + 2


def termination_bound(cst: int, value_count: int) -> int:
    """Theorem 2's termination round: ``CST + 2(⌈lg|V|⌉ + 1)``."""
    width = BinaryEncoding(range(value_count)).width
    return cst + 2 * (width + 1)
