"""Deliberately naive baselines used by the impossibility experiments.

The paper's lower bounds (Section 8) say: *any* algorithm that decides
"too early" or ignores collision information can be forced into a safety
violation.  To demonstrate those theorems as running code we need
algorithms that actually make those mistakes.  These baselines are the
counterpart of a broken comparator in a systems paper — they exist to be
defeated, and the lower-bound harness (:mod:`repro.lowerbounds.theorems`)
exhibits the violating executions mechanically.
"""

from __future__ import annotations

from typing import Optional

from ..core.algorithm import ConsensusAlgorithm
from ..core.multiset import Multiset
from ..core.process import Process
from ..core.types import (
    ACTIVE,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    Value,
)


class EagerDecider(Process):
    """Broadcasts for a fixed warm-up, then decides the minimum value heard.

    Ignores collision advice entirely — exactly the mistake Theorem 4
    punishes: without a useful detector you cannot tell whether the quiet
    rounds you observed were agreement or partition.
    """

    def __init__(self, initial_value: Value, patience: int = 3) -> None:
        super().__init__()
        self.estimate = initial_value
        self.patience = patience

    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        if self._round < self.patience and cm_advice is ACTIVE:
            return self.estimate
        return None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        values = list(received.support())
        if values:
            self.estimate = min([self.estimate] + values, key=repr)
        if self._round + 1 >= self.patience:
            self.decide(self.estimate)
            self.halt()


class NaiveMinConsensus(Process):
    """Decide the minimum value heard after ``quiet_target`` quiet rounds.

    "Quiet" here means *no new values*, judged purely from received
    messages — collision advice is read but never trusted.  Under a clean
    channel this reaches agreement; under the partition adversaries of
    Theorems 4/8 the two halves each see a quiet network and decide their
    own minima.
    """

    def __init__(self, initial_value: Value, quiet_target: int = 2) -> None:
        super().__init__()
        self.estimate = initial_value
        self.quiet_target = quiet_target
        self._quiet_streak = 0

    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        return self.estimate if cm_advice is ACTIVE else None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        new_values = [
            v for v in received.support() if repr(v) < repr(self.estimate)
        ]
        if new_values:
            self.estimate = min(new_values, key=repr)
            self._quiet_streak = 0
        else:
            self._quiet_streak += 1
        if self._quiet_streak >= self.quiet_target:
            self.decide(self.estimate)
            self.halt()


def eager_decider(patience: int = 3) -> ConsensusAlgorithm:
    """An anonymous algorithm that decides after ``patience`` rounds."""
    return ConsensusAlgorithm.anonymous(
        lambda v: EagerDecider(v, patience), name=f"eager-decider({patience})"
    )


def naive_min_consensus(quiet_target: int = 2) -> ConsensusAlgorithm:
    """An anonymous algorithm that decides after a quiet streak."""
    return ConsensusAlgorithm.anonymous(
        lambda v: NaiveMinConsensus(v, quiet_target),
        name=f"naive-min({quiet_target})",
    )
