"""The paper's consensus algorithms (Section 7) and baselines.

* :mod:`repro.algorithms.alg1` — Algorithm 1 (maj-OAC + WS + ECF, O(1)).
* :mod:`repro.algorithms.alg2` — Algorithm 2 (0-OAC + WS + ECF, Θ(lg|V|)).
* :mod:`repro.algorithms.alg3` — Algorithm 3 (0-AC, NoCM, NOCF, O(lg|V|)).
* :mod:`repro.algorithms.nonanonymous` — the Section 7.3 composite
  (Θ(min{lg|V|, lg|I|})).
* :mod:`repro.algorithms.baselines` — naive algorithms defeated by the
  Section 8 lower-bound constructions.
* Supporting structure: binary encodings, the Algorithm 3 value tree, and
  message markers.
"""

from .alg1 import Alg1Process, algorithm_1
from .alg1 import termination_bound as alg1_termination_bound
from .alg2 import Alg2Process, algorithm_2, cycle_length
from .alg2 import termination_bound as alg2_termination_bound
from .alg3 import Alg3Process, algorithm_3
from .alg3 import termination_bound as alg3_termination_bound
from .counting import ANNOUNCE, CountingProcess, counting_algorithm
from .baselines import (
    EagerDecider,
    NaiveMinConsensus,
    eager_decider,
    naive_min_consensus,
)
from .encoding import BinaryEncoding, bit_width, canonical_order
from .markers import VETO, VOTE, Marker
from .nonanonymous import (
    LeaderElectProcess,
    non_anonymous_algorithm,
)
from .nonanonymous import termination_bound as nonanon_termination_bound
from .valuetree import TreeNode, ValueTree

__all__ = [
    "algorithm_1", "Alg1Process", "alg1_termination_bound",
    "algorithm_2", "Alg2Process", "alg2_termination_bound", "cycle_length",
    "algorithm_3", "Alg3Process", "alg3_termination_bound",
    "non_anonymous_algorithm", "LeaderElectProcess",
    "nonanon_termination_bound",
    "eager_decider", "naive_min_consensus",
    "counting_algorithm", "CountingProcess", "ANNOUNCE",
    "EagerDecider", "NaiveMinConsensus",
    "BinaryEncoding", "bit_width", "canonical_order",
    "ValueTree", "TreeNode",
    "Marker", "VETO", "VOTE",
]
