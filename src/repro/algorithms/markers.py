"""Shared message markers for the consensus algorithms.

The pseudocode broadcasts bare markers (``veto``, ``vote``) whose content
never matters — only *that* something was sent.  We use module-level
singleton objects so markers can never collide with a value from ``V``
(values are user-supplied and could be the string ``"veto"``).
"""

from __future__ import annotations


class Marker:
    """An inert, hashable, self-describing message token."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"<{self.label}>"


#: Negative-acknowledgement marker (Algorithms 1 and 2, accept phases).
VETO = Marker("veto")

#: Voting marker (Algorithm 3's vote phases and Algorithm 2's propose bits).
VOTE = Marker("vote")
