"""Algorithm 3: anonymous consensus with a 0-AC detector, no contention
manager, and no ECF guarantee (§7.4).

Even when messages are *never* guaranteed to get through, collision
notifications still leak one bit per round: with zero completeness,
"somebody broadcast" is always visible (message or ``±``), and with
accuracy, "nobody broadcast" is too (Lemma 14 — all-or-nothing rounds).
Algorithm 3 spends four rounds per iteration navigating a balanced BST of
the value space on this one-bit channel:

* **vote-val**   — broadcast iff my initial value sits at the current node;
* **vote-left**  — broadcast iff my initial value is in the left subtree;
* **vote-right** — symmetric for the right subtree;
* **recurse**    — no broadcast; decide the node's value if vote-val was
  noisy, else descend toward a voting subtree (left first), else ascend.

All correct processes see identical navigation advice (Lemma 15) and so
move through the tree in lockstep (Lemma 16).  Termination is at most
``8·⌈lg|V|⌉`` rounds after failures cease (Theorem 3); a crash can strand
the group deep in the tree and force a full re-ascent, which the failure
benchmarks exercise.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.algorithm import ConsensusAlgorithm
from ..core.multiset import Multiset
from ..core.process import Process
from ..core.types import (
    COLLISION,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    Value,
)
from .markers import VOTE
from .valuetree import TreeNode, ValueTree

VOTE_VAL = "vote-val"
VOTE_LEFT = "vote-left"
VOTE_RIGHT = "vote-right"
RECURSE = "recurse"

#: The four-phase cycle, in order.
PHASES: Tuple[str, ...] = (VOTE_VAL, VOTE_LEFT, VOTE_RIGHT, RECURSE)


class Alg3Process(Process):
    """One process of Algorithm 3.

    The phase schedule is a pure function of the local round count, so all
    processes cycle in lockstep.  ``nav`` accumulates the three vote
    rounds' observations — the paper's navigation advice (Definition 21).
    """

    def __init__(self, initial_value: Value, tree: ValueTree) -> None:
        super().__init__()
        self.tree = tree
        self.initial_value = initial_value
        self.curr: TreeNode = tree.root
        self._phase_index = 0
        self._nav: List[bool] = [False, False, False]

    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        return PHASES[self._phase_index]

    def _votes_now(self) -> bool:
        """Does this process vote in the current phase (lines 7, 13, 19)?"""
        if self.phase == VOTE_VAL:
            return self.initial_value == self.curr.value
        if self.phase == VOTE_LEFT:
            return self.initial_value in self.curr.left_values
        if self.phase == VOTE_RIGHT:
            return self.initial_value in self.curr.right_values
        return False

    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        # Algorithm 3 ignores contention advice entirely: it is designed
        # for NoCM environments (Section 7.4's discussion).
        return VOTE if self._votes_now() else None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        if self.phase != RECURSE:
            # Record msgs(j) / CD(j) for the recurse decision.
            heard = len(received) > 0 or cd_advice is COLLISION
            self._nav[self._phase_index] = heard
            self._phase_index += 1
            return

        # Recurse phase (lines 25-33).
        val_vote, left_vote, right_vote = self._nav
        if val_vote:
            self.decide(self.curr.value)
            self.halt()
        elif left_vote and self.curr.left is not None:
            self.curr = self.curr.left
        elif right_vote and self.curr.right is not None:
            self.curr = self.curr.right
        else:
            # No votes at all (possible only after a crash): ascend.  The
            # root's parent is itself, so this is total.
            self.curr = self.curr.parent
        self._nav = [False, False, False]
        self._phase_index = 0


def algorithm_3(values: Iterable[Value]) -> ConsensusAlgorithm:
    """The anonymous (E(0-AC, NoCM), V, NOCF)-consensus algorithm."""
    tree = ValueTree(values)
    return ConsensusAlgorithm.anonymous(
        lambda v: Alg3Process(v, tree), name="algorithm-3"
    )


def termination_bound(value_count: int, after_round: int = 0) -> int:
    """Theorem 3's bound: ``8·⌈lg|V|⌉`` rounds after failures cease.

    ``after_round`` anchors "failures cease"; with no crashes it is 0.
    The bound floors at one full 4-round cycle so the trivial ``|V| = 1``
    and ``|V| = 2`` cases stay meaningful.
    """
    tree = ValueTree(range(value_count))
    height = max(1, tree.height)
    return after_round + 8 * height + 4
