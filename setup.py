"""Legacy setup shim: this environment has no `wheel` package, so PEP 517
editable installs fail; `setup.py develop` via pip's legacy path works."""
from setuptools import setup

setup()
