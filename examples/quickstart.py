#!/usr/bin/env python3
"""Quickstart: fault-tolerant consensus over an unreliable radio channel.

Five anonymous devices, each holding a proposed configuration value, must
agree on one — while the channel drops 30% of messages, the collision
detector produces false positives for a while, and the contention manager
is still thrashing.  This is Algorithm 2 of the paper (zero-complete,
eventually-accurate detection), the most broadly applicable algorithm:
every practical detector class can run it.

Run:  python examples/quickstart.py
"""

from repro import evaluate, quick_consensus


def main() -> None:
    values = ["channel-1", "channel-6", "channel-11"]
    result = quick_consensus(values=values, n=5, loss_rate=0.3, seed=7)

    report = evaluate(result)
    print("proposals :", result.initial_values)
    print("decisions :", result.decisions)
    print("rounds    :", result.rounds)
    print("agreement :", report.agreement)
    print("validity  :", report.strong_validity)
    print("terminated:", report.termination)
    assert report.solved, report.problems
    print("\nconsensus reached on:",
          next(iter(result.decided_values().values())))

    # Scaling up: sweep a whole (n x detector x loss_rate x seed) grid
    # as a *resumable campaign* — every finished cell is checkpointed in
    # a sqlite store, so an interrupted run continues where it stopped.
    # Every configuration runs the same unified dispatcher loop
    # (a persistent selector-driven worker pool with per-cell deadlines
    # and completion-order checkpointing); the flags only pick its shape:
    #
    #   --processes    --cell-timeout   what runs
    #   ------------   --------------   ----------------------------------
    #   N >= 2         any              N reused workers; overruns are
    #                                   checkpointed timed_out while the
    #                                   grid keeps moving at full width
    #   0 / 1          any              the same loop on one reused
    #                                   worker — deadlines still enforced
    #   --in-process   (unenforced)     debug escape hatch: cells run
    #                                   serially inside this process
    #
    # Reports are byte-identical across every row of that table, and
    # failed cells are retried on resume only --max-retries times before
    # they are left failed permanently:
    #
    #   python -m repro campaign --db campaign.db --quick \
    #       --processes 4 --cell-timeout 30 --max-retries 2
    #   python -m repro campaign --db campaign.db --report
    #
    # or from code:
    #
    #   from repro.experiments import CampaignRunner, consensus_sweep_cell
    #   runner = CampaignRunner(consensus_sweep_cell, db_path="campaign.db",
    #                           processes=4, cell_timeout=30.0)
    #   outcomes = runner.resume(n=[4, 8], detector=["0-OAC"],
    #                            loss_rate=[0.1, 0.3], trial=range(3))
    #
    # Per-cell round analytics come straight out of the store as an
    # aligned table (status, attempts, rounds, mean broadcast count):
    #
    #   python -m repro campaign report --table --db campaign.db
    #
    # Speed: the engine has a vectorised *array round kernel* — receive
    # counts, detector advice, the randomised adversaries' draws, and
    # (for same-class fleets) process transitions run as whole-round
    # batched passes.  Rounds with several distinct payloads intern
    # messages to small int codes and resolve as one (receivers x codes)
    # count matrix, and the physical-radio and multihop substrate layers
    # produce array-resolved losses too, so testbed and topology runs
    # ride the same kernel as the formal adversaries (~2x on the E11
    # round-throughput smoke at n=64, more at larger n — see
    # benchmarks/BENCH_e11.json for the committed n-scaling curve).
    # The gating contract:
    #
    # * the capability probe (repro.core.environment.array_kernel_module)
    #   picks the kernel automatically when numpy is importable; no flag
    #   needed, and without numpy everything runs pure python;
    # * export REPRO_PURE_PYTHON=1 (before starting Python), or pass
    #   use_array_kernel=False to ExecutionEngine/run_algorithm/
    #   run_consensus, to force the pure-python reference path — e.g. to
    #   reproduce the no-numpy CI leg locally;
    # * both paths produce *indistinguishable executions* for the same
    #   seeds, under every record policy (asserted by the equivalence
    #   suite in tests/test_array_kernel.py);
    # * determinism of the randomised adversaries is per backend:
    #   executions replay bit-for-bit given (seed, backend).  In
    #   particular CaptureEffectLoss's batched numpy path draws one
    #   substream block per (seed, round, senders, receivers) — same
    #   capture law as its per-receiver substreams, so statistics
    #   agree across backends even though the concrete loss patterns
    #   differ.
    # Dynamic membership: every scenario above has a fixed process set,
    # but the environment also takes a *churn adversary* — processes
    # leave mid-execution and (re)join with fresh state, forgetting
    # everything including their decisions (decisions that depart with
    # a process are kept as "ghost decisions" so system-level agreement
    # stays checkable).  Built-ins live next to the crash adversaries:
    #
    #   from repro.adversary.churn import SeededChurn, ScheduledChurn
    #   from repro.experiments import ecf_environment
    #   env = ecf_environment(n=6, loss_rate=0.2, seed=1,
    #                         churn=SeededChurn(0.2, seed=102, deadline=6))
    #
    # Rounds where a leave or join actually fires take the pure-python
    # reference path (every other round — mere absences included — still
    # rides the array kernel), and kernel-on vs kernel-off executions
    # stay byte-identical either way.  There is
    # also a ring overlay for multihop scenarios — successor lists plus
    # Chord-style finger tables:
    #
    #   from repro.substrate.multihop import MultihopNetwork
    #   ring = MultihopNetwork.ring(32, successors=2, fingers=True)
    #
    # and an experiment family over the whole axis, E19: agreement
    # quality vs churn rate x loss rate x detector x topology, run
    # through the same resumable campaign layer:
    #
    #   python -m repro campaign --family e19 --db churn.db --quick
    #   python -m repro campaign --family e19 --db churn.db --report --table
    print("\nnext: resumable campaigns -> python -m repro campaign --help")


if __name__ == "__main__":
    main()
