#!/usr/bin/env python3
"""A guided tour of the Section 8 lower bounds, run as code.

Every impossibility proof in the paper is constructive: assume a fast
algorithm, build executions, compose them, exhibit a contradiction.  The
library turns those constructions into *witness generators*.  Pointed at
a naive algorithm, each generator mechanically produces the violating
execution; pointed at the paper's algorithms, it certifies the bound is
respected.

Run:  python examples/lower_bound_tour.py
"""

from repro.algorithms import (
    algorithm_1,
    algorithm_2,
    algorithm_3,
    eager_decider,
    naive_min_consensus,
)
from repro.lowerbounds import (
    theorem4_witness,
    theorem6_witness,
    theorem8_witness,
    theorem9_witness,
)

VALUES = list(range(64))


def show(outcome) -> None:
    print(f"  {outcome}")
    if outcome.indistinguishability_ok is not None:
        print(f"    indistinguishability verified: "
              f"{outcome.indistinguishability_ok}")


def main() -> None:
    print("Theorem 4 — no consensus without collision detection:")
    print(" a naive decider gets partitioned into disagreement...")
    show(theorem4_witness(naive_min_consensus(2), "commit", "abort", n=3))
    print(" ...while Algorithm 1, stripped of its detector, correctly")
    print(" refuses to ever decide:")
    show(theorem4_witness(algorithm_1(), "commit", "abort", n=3,
                          horizon=40))

    print("\nTheorem 6 — half-complete detection costs Ω(lg|V|) rounds:")
    print(" deciding within the pigeonhole window is fatal...")
    show(theorem6_witness(eager_decider(1), VALUES, n=2))
    print(" ...and Algorithm 2 is still undecided at that point:")
    show(theorem6_witness(algorithm_2(VALUES), VALUES, n=2))

    print("\nTheorem 8 — eventual accuracy is useless without ECF:")
    show(theorem8_witness(naive_min_consensus(2), "commit", "abort", n=3))
    show(theorem8_witness(algorithm_1(), "commit", "abort", n=3,
                          horizon=60))

    print("\nTheorem 9 — even perfect detection costs Ω(lg|V|) without ECF:")
    show(theorem9_witness(eager_decider(1), VALUES, n=2))
    show(theorem9_witness(algorithm_3(VALUES), VALUES, n=2))


if __name__ == "__main__":
    main()
