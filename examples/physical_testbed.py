#!/usr/bin/env python3
"""End-to-end run over the simulated physical layer (no formal oracles).

Everything the formal experiments idealise is replaced by the substrate:
message loss comes from a capture-effect radio with log-normal fading,
collision advice from carrier-sense energy detection, and contention
management from seeded exponential backoff.  The algorithms are unchanged
— the point of the paper's hardware-oriented detector classes is exactly
that real carrier sensing approximates zero completeness well enough.

The demo first calibrates the substrate (reproducing the paper's
empirical claims), then runs Algorithm 2 over it.

Run:  python examples/physical_testbed.py
"""

from repro.algorithms import algorithm_2
from repro.core import evaluate
from repro.substrate import (
    RadioChannel,
    ReferenceBroadcastSync,
    Testbed,
    measure_detector_quality,
)


def main() -> None:
    print("== substrate calibration ==")
    channel = RadioChannel(seed=2)
    for b in (1, 2, 3):
        stats = channel.loss_statistics(n=8, broadcasters=b, rounds=300)
        print(f"  {b} simultaneous sender(s): "
              f"{stats['loss_fraction']:.1%} of messages lost")
        channel.reset()

    quality = measure_detector_quality(n=8, broadcasters=3, rounds=300)
    print(f"  carrier-sense detector: 0-complete in "
          f"{quality.zero_complete_rate:.1%} of rounds, "
          f"maj-complete in {quality.majority_complete_rate:.1%} "
          "(paper: ~100% / >90%)")

    sync = ReferenceBroadcastSync(n=8, resync_interval=100, seed=3)
    print(f"  clock skew with RBS resync: "
          f"{sync.max_skew_between_resyncs(1000):.4f} round lengths\n")

    print("== consensus over the physical stack ==")
    firmware = ["fw-2.1.3", "fw-2.1.4", "fw-2.2.0"]
    testbed = Testbed(n=6, seed=4)
    outcome = testbed.run(
        algorithm_2(firmware),
        {i: firmware[i % 3] for i in range(6)},
        max_rounds=3000,
    )
    report = evaluate(outcome.execution)
    print(f"  backoff locked onto leader {outcome.leader} at round "
          f"{outcome.backoff_stabilized_at}")
    print(f"  agreed firmware: "
          f"{next(iter(outcome.execution.decided_values().values()))}")
    print(f"  decision round : {outcome.execution.last_decision_round()}")
    print(f"  agreement={report.agreement} validity="
          f"{report.strong_validity} terminated={report.termination}")
    assert report.solved, report.problems


if __name__ == "__main__":
    main()
