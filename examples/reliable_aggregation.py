#!/usr/bin/env python3
"""Consensus-hardened data aggregation and cluster voting (§1.4).

The paper motivates single-hop consensus with two sensor-network
pipelines, both implemented in ``repro.applications``:

* spanning-tree aggregation, where lossy links silently drop subtree
  contributions unless each sibling group agrees (via max-consensus) on
  the value it passes up;
* Kumar-style cluster voting, where each clique agrees on one report so
  only |clusters| messages travel the long haul to the source.

Run:  python examples/reliable_aggregation.py
"""

import random

from repro.applications import (
    ClusteredNetwork,
    aggregate_naive,
    aggregate_with_consensus,
    cluster_vote,
)

DOMAIN = list(range(64))


def main() -> None:
    rng = random.Random(42)
    readings = [rng.randrange(64) for _ in range(16)]
    print(f"16 sensors, readings max = {max(readings)}, 40% message loss\n")

    print("-- naive push-up aggregation (10 trials)")
    wrong = 0
    for seed in range(10):
        outcome = aggregate_naive(readings, loss_rate=0.4, seed=seed)
        wrong += int(not outcome.exact)
        print(f"   trial {seed}: root got {outcome.result} "
              f"{'(WRONG, silently)' if not outcome.exact else '(exact)'}")
    print(f"   silent errors: {wrong}/10\n")

    print("-- consensus-hardened aggregation (10 trials)")
    for seed in range(10):
        outcome = aggregate_with_consensus(
            readings, DOMAIN, loss_rate=0.4, seed=seed
        )
        assert outcome.exact and outcome.safety_ok
    print("   exact in 10/10 trials "
          f"({outcome.consensus_groups} consensus groups per trial)\n")

    print("-- Kumar cluster voting, source 32 hops away")
    network = ClusteredNetwork(n=24, cluster_size=4, base_distance=32)
    cluster_readings = {i: rng.randrange(64) for i in range(24)}
    reports = cluster_vote(network, cluster_readings, DOMAIN, seed=1)
    naive_cost = network.naive_transport_cost()
    clustered_cost = network.clustered_transport_cost(reports)
    for c, report in enumerate(reports):
        print(f"   cluster {c} {report.members}: agreed on "
              f"{report.decision} in {report.rounds} rounds")
    print(f"   transport: naive {naive_cost} hop-messages vs clustered "
          f"{clustered_cost} ({100 * (1 - clustered_cost / naive_cost):.0f}% saved)")
    assert all(r.agreement_ok and r.every_member_voted for r in reports)


if __name__ == "__main__":
    main()
