#!/usr/bin/env python3
"""Actuator coordination with NO delivery guarantee (§7.4 / Algorithm 3).

The paper's motivating high-stakes example: actuator-equipped devices
reconfiguring a factory assembly line, where acting on disagreeing
commands is unacceptable.  On a floor saturated with interference the
channel may *never* deliver a full message — yet with an accurate,
zero-complete collision detector (carrier sensing that never lies),
Algorithm 3 still reaches consensus by navigating a search tree over the
command space using only one bit per round ("somebody broadcast" vs
"silence").

The demo runs under total message loss, then under random 70% loss, then
with a mid-run crash, and shows agreement + validity in all three.

Run:  python examples/noisy_factory_floor.py
"""

from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import IIDLoss, SilenceLoss
from repro.algorithms import algorithm_3
from repro.core import evaluate, run_consensus
from repro.experiments.scenarios import nocf_environment

#: The command space: (line id, target speed) reconfiguration commands.
COMMANDS = [f"line-{line}:speed-{speed}" for line in range(4)
            for speed in (25, 50, 75, 100)]


def run(name, loss=None, crash=None, proposals=None):
    members = list(range(4))
    proposals = proposals or {
        0: COMMANDS[3], 1: COMMANDS[9], 2: COMMANDS[9], 3: COMMANDS[14],
    }
    env = nocf_environment(len(members), loss=loss, crash=crash)
    result = run_consensus(
        env, algorithm_3(COMMANDS), proposals, max_rounds=300
    )
    report = evaluate(result)
    decided = result.decided_values()
    print(f"--- {name}")
    print(f"  proposals : {sorted(set(proposals.values()))}")
    print(f"  decision  : {sorted(set(decided.values()))}")
    print(f"  rounds    : {result.last_decision_round()}")
    print(f"  agreement : {report.agreement}   "
          f"validity: {report.strong_validity}")
    assert report.agreement and report.strong_validity, report.problems
    return result


def main() -> None:
    print(f"|command space| = {len(COMMANDS)}; "
          "channel never guarantees delivery (NOCF)\n")
    run("total silence: every message lost, forever", loss=SilenceLoss())
    print()
    run("random 70% loss, arbitrary per receiver",
        loss=IIDLoss(0.7, seed=13))
    print()
    run("total silence + coordinator crash at round 9",
        loss=SilenceLoss(),
        crash=ScheduledCrashes.at({9: [0]}),
        proposals={0: COMMANDS[0], 1: COMMANDS[12],
                   2: COMMANDS[12], 3: COMMANDS[12]})
    print("\nAll three scenarios safe: no actuator ever received a "
          "conflicting command.")


if __name__ == "__main__":
    main()
