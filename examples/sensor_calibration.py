#!/usr/bin/env python3
"""Sensor-network calibration: the paper's motivating scenario (§1.4).

A clique of sensor nodes must agree on a calibration offset: if any two
nodes apply different offsets, their readings become incomparable and the
aggregation tree upstream produces garbage.  Agreement is therefore a
hard safety requirement, while termination can tolerate delay.

The demo runs Algorithm 1 (constant-round, needs majority-complete
detection) and Algorithm 2 (logarithmic, needs only carrier sensing) side
by side through the same hostile prelude: 40% message loss, spurious
collision reports, a thrashing contention manager, and two node crashes —
then a stabilization point, after which both must finish fast.

Run:  python examples/sensor_calibration.py
"""

from repro.adversary.crash import ScheduledCrashes
from repro.algorithms import (
    alg1_termination_bound,
    alg2_termination_bound,
    algorithm_1,
    algorithm_2,
)
from repro.core import evaluate, run_consensus
from repro.experiments.scenarios import maj_oac_environment, zero_oac_environment

#: Candidate calibration offsets (hundredths of a degree).
OFFSETS = [round(-2.0 + 0.25 * i, 2) for i in range(16)]
N = 6
CST = 10   # the channel, detector, and CM all stabilize at round 10


def run(name, algorithm, environment, bound):
    assignment = {i: OFFSETS[(i * 5 + 3) % len(OFFSETS)] for i in range(N)}
    result = run_consensus(
        environment, algorithm, assignment, max_rounds=bound + 20
    )
    report = evaluate(result, by_round=bound)
    decided = next(iter(result.decided_values().values()))
    print(f"--- {name}")
    print(f"  proposals        : {sorted(set(assignment.values()))}")
    print(f"  agreed offset    : {decided}")
    print(f"  decision round   : {result.last_decision_round()} "
          f"(bound {bound}, CST {CST})")
    print(f"  crashed nodes    : {list(result.crashed_indices())}")
    print(f"  solved in bound  : {report.solved}")
    assert report.solved, report.problems
    return result.last_decision_round()


def main() -> None:
    crashes = ScheduledCrashes.at({3: [4], 7: [5]})

    r1 = run(
        "Algorithm 1 (maj-OAC detector: needs real collision-detect hardware)",
        algorithm_1(),
        maj_oac_environment(N, cst=CST, seed=11, loss_rate=0.4,
                            crash=crashes),
        alg1_termination_bound(CST),
    )
    r2 = run(
        "Algorithm 2 (0-OAC detector: plain carrier sensing suffices)",
        algorithm_2(OFFSETS),
        zero_oac_environment(N, cst=CST, seed=11, loss_rate=0.4,
                             crash=crashes),
        alg2_termination_bound(CST, len(OFFSETS)),
    )

    print("\nThe price of weaker detection hardware:",
          f"{r2 - r1} extra rounds",
          f"(constant vs 2(⌈lg {len(OFFSETS)}⌉+1) after stabilization).")


if __name__ == "__main__":
    main()
