#!/usr/bin/env python3
"""Clusterhead election with crash-failover (§1.4 / §7.3).

Choosing a clusterhead is consensus over node identifiers — and when the
space of values to agree on is huge (here: full 48-bit-MAC-style IDs as
payload plus a configuration blob), the paper's non-anonymous variant
first elects a leader over the *small* ID space and lets the leader
disseminate its value, paying Θ(lg|I|) instead of Θ(lg|V|) rounds.

The demo elects a clusterhead, crashes it mid-protocol, and shows the
chained re-election recovering — with agreement intact throughout.

Run:  python examples/clusterhead_election.py
"""

from repro.adversary.crash import ScheduledCrashes
from repro.algorithms import non_anonymous_algorithm
from repro.core import evaluate, run_consensus
from repro.experiments.scenarios import zero_oac_environment

#: The small per-cluster ID space (e.g. short addresses assigned at join).
ID_SPACE = list(range(8))

#: The huge value space: (clusterhead id, slot schedule hash) pairs.
VALUES = [(i, h) for i in range(8) for h in range(512)]


def main() -> None:
    members = [0, 1, 2, 5]                 # this cluster's live nodes
    proposals = {
        0: (0, 101), 1: (1, 422), 2: (2, 77), 5: (5, 300),
    }

    print(f"cluster members : {members}")
    print(f"|V| = {len(VALUES)}, |I| = {len(ID_SPACE)} -> "
          "leader-elect branch (lg|I| rounds, not lg|V|)")

    # --- Round 1: clean run. ------------------------------------------
    env = zero_oac_environment(
        len(members), cst=2, seed=3, indices=members
    )
    algo = non_anonymous_algorithm(VALUES, ID_SPACE)
    result = run_consensus(env, algo, proposals, max_rounds=300)
    report = evaluate(result)
    head = next(iter(result.decided_values().values()))
    print("\n--- healthy cluster")
    print(f"  elected clusterhead config: {head}")
    print(f"  decision round: {result.last_decision_round()}")
    assert report.solved, report.problems

    # --- Round 2: the first leader crashes mid-protocol. --------------
    env = zero_oac_environment(
        len(members), cst=2, seed=3, indices=members,
        crash=ScheduledCrashes.at({16: [0]}),   # node 0 wins, then dies
    )
    result = run_consensus(env, algo, proposals, max_rounds=400)
    report = evaluate(result)
    survivors = result.correct_indices()
    head = next(iter(result.decided_values().values()))
    print("\n--- leader crash at round 16")
    print(f"  survivors: {list(survivors)}")
    print(f"  re-elected clusterhead config: {head}")
    print(f"  decision round: {result.last_decision_round()}")
    print(f"  agreement intact: {report.agreement}")
    assert report.agreement and report.strong_validity, report.problems
    assert report.termination


if __name__ == "__main__":
    main()
