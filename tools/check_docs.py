#!/usr/bin/env python
"""Docs sanity check: required files exist, internal links resolve.

Usage::

    python tools/check_docs.py [repo_root]

Checks, with no dependencies beyond the standard library:

* ``README.md``, ``docs/campaigns.md``, ``docs/architecture.md``, and
  ``docs/failure-modes.md`` exist and are non-empty;
* every relative markdown link in README.md, docs/*.md, ROADMAP.md and
  CHANGES.md points at a file that exists (``http(s)://`` URLs and
  pure ``#anchor`` links are skipped; a ``path#anchor`` link is checked
  for the path part);
* no link escapes the repository root.

Exit status 0 when clean, 1 with one line per problem otherwise — CI
runs this as the docs gate, and ``tests/test_docs.py`` runs it in
tier-1 so a broken link fails locally before it fails in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REQUIRED = (
    "README.md",
    "docs/campaigns.md",
    "docs/architecture.md",
    "docs/failure-modes.md",
)

#: inline markdown links: [text](target) — images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: fenced code blocks must not contribute links.
_FENCE = re.compile(r"^(```|~~~)")


def iter_links(text: str):
    """Yield link targets from *text*, ignoring fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1)


def check(root: Path) -> list:
    problems = []
    for rel in REQUIRED:
        path = root / rel
        if not path.is_file():
            problems.append(f"missing required doc: {rel}")
        elif not path.read_text(encoding="utf-8").strip():
            problems.append(f"required doc is empty: {rel}")

    sources = [root / "README.md", root / "ROADMAP.md", root / "CHANGES.md"]
    sources += sorted((root / "docs").glob("*.md"))
    for source in sources:
        if not source.is_file():
            continue
        for target in iter_links(source.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel_target = target.split("#", 1)[0]
            if not rel_target:
                continue
            resolved = (source.parent / rel_target).resolve()
            src_rel = source.relative_to(root)
            if root.resolve() not in resolved.parents and resolved != root.resolve():
                problems.append(
                    f"{src_rel}: link escapes the repo: {target}")
            elif not resolved.exists():
                problems.append(
                    f"{src_rel}: broken link: {target}")
    return problems


def main(argv: list) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs check: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
